// Package core implements the paper's proposal: packets as persistent
// in-memory data structures.
//
// A Store lays a PM region out as a superblock, an array of fixed-size
// persistent packet-metadata slots, and a data area that doubles as the
// NIC's receive buffer pool (the PASTE configuration). A stored value IS
// the received packet bytes, in place: the NIC DMAs the request into the
// data area, the server flushes those lines, and commit is a metadata
// slot describing where the key and value extents live — no allocation in
// a storage-stack allocator, no data copy, and, when checksum reuse is
// on, no integrity pass over the data, because the NIC already verified
// the TCP checksum and exported the payload's ones-complement partial
// sum, which combines and subtracts algebraically into a per-extent
// value checksum (§4.2 of the paper).
//
// The metadata slot is deliberately compact (two cache lines by default,
// §5.1): magic, commit sequence, NIC hardware timestamp, value checksum,
// key prefix for cache-efficient comparisons, a skip-list tower, and up
// to two inline value extents with a chain for more. The slots form a
// persistent skip list ordered by key; the level-0 links are flushed and
// fenced, upper levels are best-effort, and recovery never depends on
// either: it rescans the slot array and rebuilds the index from committed
// slots alone.
//
// Crash-consistency protocol: puts are staged, then committed as a
// group (a per-op put is a group of one). Staging writes the data
// lines, key bytes, chain slots and the uncommitted (seq=0) slot image,
// links the record into the volatile index, and accumulates every
// dirty range in a pmem.FlushSet. Commit then runs three phases, each
// one deduplicated flush batch plus one fence:
//
//	A: images + data + keys + chains      -> FlushBatch, Fence
//	B: seq words (8-byte atomic commits)
//	   + level-0 links (4-byte atomic)    -> FlushBatch, Fence
//	C: old versions' seq words cleared    -> FlushBatch, Fence (only on
//	                                         overwrites)
//
// The commit word and the level-0 link share a fence because recovery
// never follows links — it rescans the slot array — so a link that
// persists without its record's commit word is rebuilt away. A crash
// between any two phases either loses the whole group (never
// acknowledged: acks are withheld until the B fence) or recovers a
// committed subset by scan, and recovery's same-key dedup (keep highest
// seq) makes any subset consistent. Deletes clear the commit word
// first, then unlink, so a crash can never resurrect a deleted key.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/pkt"
	"packetstore/internal/pmem"
)

// Geometry constants.
const (
	superblockSize = 4096
	slotMagic      = 0x656d4b50         // "PKme"
	chainMagic     = 0x74784b50         // "PKxt"
	sbMagic        = 0x31524f54534b5250 // "PKSTOR1" + '1'

	maxHeight   = 8
	minSlotSize = 128

	// Slot field offsets.
	oMagic   = 0
	oFlags   = 4
	oHeight  = 6
	oExtCnt  = 7
	oSeq     = 8
	oHWTime  = 16
	oVCsum   = 24
	oKLen    = 28
	oKPrefix = 32
	oKOff    = 40
	oVLen    = 44
	oTower   = 48 // 8 * u32
	oExt     = 80 // 2 * {off,len,sum u32}
	oChain   = 104

	extSize       = 12
	inlineExtents = 2
	chainExtents  = 9
	oChainCnt     = 4
	oChainExt     = 8
	oChainNext    = 116

	// oSlotSum holds a CRC32C over the slot image's immutable fields —
	// including the commit sequence the slot will carry once committed —
	// plus the key bytes (record slots), or over the whole image prefix
	// (chain slots). Only the tower is excluded: it is retargeted at
	// runtime without re-persisting. Recovery rejects — and quarantines —
	// any committed slot whose stored sum does not match, so a flipped
	// bit in the commit word itself, or a stale slot "resurrected" by a
	// bit flip after its word was cleared, fails validation too.
	oSlotSum = 120

	// Superblock field offsets.
	sbOMagic     = 0
	sbOMetaBase  = 16
	sbOMetaSlots = 24
	sbOSlotSize  = 32
	sbODataBase  = 40
	sbODataSlots = 48
	sbOBufSize   = 56
	sbOTower     = 128 // head tower, 8 * u32
)

// Errors.
var (
	ErrFull       = errors.New("pktstore: out of metadata or data slots")
	ErrKeyTooLong = errors.New("pktstore: key exceeds 64KB")
	ErrCorrupt    = errors.New("pktstore: corrupt store")
	// ErrShardDown marks an operation routed to a quarantined shard: its
	// recovery or verification failed, so it is fenced off while the rest
	// of the store keeps serving. Errors carry the shard index and reason;
	// match with errors.Is.
	ErrShardDown = errors.New("pktstore: shard quarantined")
)

// slotCRCTable is the Castagnoli polynomial, the same one iSCSI/ext4 use
// for metadata integrity (hardware CRC32C on amd64/arm64).
var slotCRCTable = crc32.MakeTable(crc32.Castagnoli)

// slotSum computes a record slot's integrity checksum: CRC32C over the
// immutable image regions — header, commit word, record fields, extents
// and chain pointer — plus the key bytes, so a flipped bit in either the
// metadata or the key itself is caught at recovery. Put computes it with
// the record's future commit sequence stamped into the image (the
// sequence is assigned before the image is built), so the sum stored
// with the uncommitted image already matches the committed slot. Only
// the tower [oTower,oExt) is excluded (see oSlotSum).
func slotSum(img, key []byte) uint32 {
	c := crc32.Update(0, slotCRCTable, img[oMagic:oTower])
	c = crc32.Update(c, slotCRCTable, img[oExt:oSlotSum])
	return crc32.Update(c, slotCRCTable, key)
}

// chainSum is the integrity checksum of an extent-chain slot: every chain
// field lives in [0, oSlotSum), and chain slots are never mutated after
// they persist, so the whole prefix is covered.
func chainSum(img []byte) uint32 {
	return crc32.Update(0, slotCRCTable, img[:oSlotSum])
}

// Config tunes a Store.
type Config struct {
	// MetaSlots is the number of persistent packet-metadata slots.
	MetaSlots int
	// SlotSize is the metadata slot size in bytes (>= 128; ablation E7
	// studies 128 vs 256).
	SlotSize int
	// DataSlots and DataBufSize shape the data area / NIC receive pool.
	DataSlots   int
	DataBufSize int
	// ChecksumReuse accepts NIC-provided partial sums instead of
	// computing CRC-style integrity sums in software (ablation E3).
	ChecksumReuse bool
	// VerifyOnGet recomputes and checks the value checksum on every read.
	VerifyOnGet bool
	// ParityGroup groups a ShardedStore's shards into RAID-5-style parity
	// groups of up to this many members, each backed by one parity
	// partition that makes single-member data-area loss survivable. 0 or
	// 1 disables parity (no layout or behaviour change); plain Stores and
	// single-shard stores ignore it. Requires SlotSize and DataBufSize to
	// be multiples of the cache-line size.
	ParityGroup int
	// Breakdown collects per-phase put timings (Breakdown()). Off by
	// default: the clock reads (4+ per put) are measurable against a
	// ~1µs operation, so only the E-series breakdown runs pay for them.
	Breakdown bool
	// LockedReads disables the lock-free GET fast path (fastget.go),
	// forcing every read through the store mutex. It exists as the A/B
	// baseline knob for the E14 read-mix benchmark; production
	// configurations leave it false.
	LockedReads bool
}

func (c *Config) fill() {
	if c.MetaSlots == 0 {
		c.MetaSlots = 4096
	}
	if c.SlotSize == 0 {
		c.SlotSize = minSlotSize
	}
	if c.SlotSize < minSlotSize {
		panic("pktstore: slot size below minimum")
	}
	if c.DataSlots == 0 {
		c.DataSlots = 4096
	}
	if c.DataBufSize == 0 {
		c.DataBufSize = 2048
	}
}

// RegionSize returns the PM region size the configuration needs.
func (c Config) RegionSize() int {
	cc := c
	cc.fill()
	return superblockSize + cc.MetaSlots*cc.SlotSize + cc.DataSlots*cc.DataBufSize
}

// Extent locates value bytes in the data area, with their unfolded
// Internet-checksum partial sum.
type Extent struct {
	Off int
	Len int
	Sum uint32
}

// Stats counts store operations.
type Stats struct {
	Puts, Gets, Deletes, Ranges uint64
	Hits                        uint64
	ChecksumReused              uint64
	ChecksumComputed            uint64
	BytesStored                 uint64
	Records                     int
	// SlotsQuarantined counts metadata slots fenced off by recovery after
	// failing structural or checksum validation.
	SlotsQuarantined int
	// GroupCommits counts Commit calls that retired more than one staged
	// put under a single group fence; GroupedPuts counts the puts they
	// retired (GroupedPuts/GroupCommits is the achieved batch size).
	GroupCommits uint64
	GroupedPuts  uint64
	// ParityWrites counts parity lines folded and flushed on the write
	// path (the incremental redundancy cost); Reconstructions counts
	// records successfully re-materialised from parity, and
	// UnrecoverableSlots counts repair attempts that failed because the
	// loss exceeded the group's redundancy.
	ParityWrites       uint64
	Reconstructions    uint64
	UnrecoverableSlots uint64
	// SlotsHeld gauges data slots currently fenced for media damage.
	SlotsHeld int
	// FastGets counts reads served entirely by the lock-free fast path
	// (hits and validated misses). FastGetRetries counts optimistic
	// attempts discarded by a mid-read sequence change; FastGetFallbacks
	// counts reads that conceded to the locked slow path (see the
	// fallback taxonomy in fastget.go). Gets = FastGets + fallbacks'
	// locked completions.
	FastGets         uint64
	FastGetRetries   uint64
	FastGetFallbacks uint64
}

// Breakdown accumulates per-phase put time for the Table 2 reproduction.
type Breakdown struct {
	Ops      uint64
	Parse    time.Duration // reserved for server-side accounting
	Checksum time.Duration // software checksum when reuse is off
	Copy     time.Duration // data copies (copy-path puts only)
	Alloc    time.Duration // slot allocation (volatile free lists)
	Meta     time.Duration // slot image construction + search + link
	Flush    time.Duration // cache-line write-backs and fences
}

// Store is the packetstore. A Store occupies [base, base+RegionSize())
// of its region; a ShardedStore lays several Stores side by side in one
// region, each with its own allocators, index and commit sequence.
type Store struct {
	mu  sync.Mutex
	r   *pmem.Region
	cfg Config

	base     int // region offset of this store's superblock
	metaBase int
	dataBase int

	pool     *pkt.Pool // data-area packet pool (shared with the NIC)
	metaFree []int     // free metadata slot indices
	dataRefs []int32   // per data slot: -1 pool-owned, >=0 record refs
	// dataPins counts external borrows of a store-owned data slot —
	// transmit pins (PinExtents), the server's key arena, and lock-free
	// readers mid-copy — separately from record references. An online
	// rebuild (Rehydrate) recomputes dataRefs from the slot scan but
	// preserves dataPins: the borrowers still hold offsets into those
	// slots, and their releases decrement this counter unconditionally,
	// so a slot re-admits to the pool the moment both counts drain
	// instead of leaking forever. Atomic because the fast read path pins
	// and unpins without the store mutex (fastget.go).
	dataPins []atomic.Int32
	// recycleWanted marks slots whose recycle a mutator deferred because
	// a lock-free reader held a pin: the final unpinner re-enters the
	// lock and completes it (unpinFast).
	recycleWanted []atomic.Bool
	// dataHeld marks data slots with confirmed media damage (a value
	// checksum failed over their bytes): they are never returned to the
	// NIC pool when their counts drain — the fault could recur and eat
	// the next record too. The fence survives online rebuilds; only a
	// process restart (which rebuilds volatile state from scratch)
	// forgets it.
	dataHeld []bool
	seq      uint64
	count    int
	// quarantined counts committed slots that failed validation during
	// recovery. They are fenced off: never served, never handed out for
	// reuse (the corruption may be a media fault that would recur).
	// metaFenced marks those slots so the scrubber doesn't re-report the
	// same damage every pass.
	quarantined int
	metaFenced  []bool
	// epoch increments on every Rehydrate. It is the acked-write gate:
	// a rebuild drops staged-but-unacked puts, so a server that buffered
	// acks against staged records compares the epoch it saw before
	// staging with the epoch after Commit — a mismatch means the staged
	// group may have been dropped and the buffered acks must not escape.
	epoch uint64
	// onQuarantine, when set, observes each slot the scan fences off
	// (test hook; per-store so parallel tests race-freely install their
	// own observers).
	onQuarantine func(slot int, err error)

	// parity is this store's parity-group runtime (nil when redundancy is
	// off). Attached once after open, immutable afterwards.
	parity *parityRT
	// parityFold is applyParityLocked's reusable span batch (guarded by
	// mu, like every commit-path scratch).
	parityFold []pmem.XorSpan
	// scrubStamp records, per metadata slot, the scrub generation that
	// last validated the slot's record; scrubPass is the current
	// generation (starts at 1 so stamp 0 always means "never"). Rebuilds
	// skip re-validating records with a fresh stamp.
	scrubStamp []uint32
	scrubPass  uint32
	// valueBad gates serving, per metadata slot, while a record's value
	// bytes are known-damaged and awaiting a deferred parity repair:
	// reads answer a typed ErrCorrupt instead of bytes that cannot be
	// trusted. Volatile — reset by full rescans, re-derived by repair.
	valueBad []bool

	rng   *rand.Rand
	stats Stats
	bd    Breakdown

	// Group-persist state: staged lists puts whose slot images and index
	// links are written (and visible to readers) but whose commit words
	// are not yet stamped; fs accumulates their dirty lines for the group
	// flush. Both live under mu; every read/delete/sync entry point
	// commits the pending group first, so staged state never escapes the
	// batch that created it. stagedN shadows len(staged) atomically so
	// the lock-free read path can honor the commit barrier without the
	// lock.
	staged  []prepared
	stagedN atomic.Int32
	fs      pmem.FlushSet

	// --- lock-free read fast path (fastget.go, DESIGN §5.13) ---

	// mutSeq is the store's seqlock word: even = stable, odd = a
	// mutation bracket is open. mutDepth (under mu) nests brackets.
	mutSeq   atomic.Uint64
	mutDepth int
	// oddHot is a leaky gauge of recent open-bracket sightings: +2 per
	// odd snapshot, -1 per even one. Readers consult it to decide
	// whether an open bracket is worth a yield-and-retry (read-mostly
	// traffic, gauge near zero) or an immediate concession to the lock
	// (sustained write pressure, gauge pinned high).
	oddHot atomic.Int32
	// recs publishes one immutable descriptor per committed record;
	// fastHead mirrors the superblock's head tower (slot index + 1 per
	// level, 0 = nil). Maintained under mu inside mutation brackets,
	// read with plain atomic loads by lock-free GETs.
	recs     []atomic.Pointer[nodeDesc]
	fastHead [maxHeight]atomic.Uint32
	// Read-side counters, atomic so the fast path can count without the
	// lock; Stats() merges them into the snapshot.
	gets             atomic.Uint64
	hits             atomic.Uint64
	fastGets         atomic.Uint64
	fastGetRetries   atomic.Uint64
	fastGetFallbacks atomic.Uint64

	// numaNode is the NUMA node of the core currently driving this
	// store — stamped by the serving event loop (its own node when it
	// owns the shard, the thief's node during a stolen cycle) and passed
	// to every node-aware pmem charge. Atomic because the lock-free read
	// path loads it concurrently with restamps; approximate for reads
	// that overlap a stamp, exact for the single-writer mutation path.
	// Zero until a placement is configured, which keeps Nodes=1
	// deployments on the pre-NUMA charge arithmetic.
	numaNode atomic.Int32
}

// SetNUMANode declares which NUMA node the core currently driving this
// store runs on. The kvserver executor stamps it at cycle start.
func (s *Store) SetNUMANode(n int) { s.numaNode.Store(int32(n)) }

// NUMANode reports the last stamped driving node.
func (s *Store) NUMANode() int { return int(s.numaNode.Load()) }

// nd is the caller-node shorthand for pmem *From charges.
func (s *Store) nd() int { return int(s.numaNode.Load()) }

// Open formats (fresh region) or recovers (existing) a Store over r.
func Open(r *pmem.Region, cfg Config) (*Store, error) {
	return openAt(r, cfg, 0)
}

// openAt opens a Store whose superblock starts at base within r (shard
// layouts place several stores in one region).
func openAt(r *pmem.Region, cfg Config, base int) (*Store, error) {
	cfg.fill()
	if base+cfg.RegionSize() > r.Size() {
		return nil, fmt.Errorf("pktstore: region %d bytes, need %d at base %d", r.Size(), cfg.RegionSize(), base)
	}
	s := &Store{
		r: r, cfg: cfg,
		base:     base,
		metaBase: base + superblockSize,
		rng:      rand.New(rand.NewSource(0x9e3779b9)),
	}
	s.dataBase = s.metaBase + cfg.MetaSlots*cfg.SlotSize
	s.dataRefs = make([]int32, cfg.DataSlots)
	for i := range s.dataRefs {
		s.dataRefs[i] = -1
	}
	s.dataPins = make([]atomic.Int32, cfg.DataSlots)
	s.recycleWanted = make([]atomic.Bool, cfg.DataSlots)
	s.dataHeld = make([]bool, cfg.DataSlots)
	s.metaFenced = make([]bool, cfg.MetaSlots)
	s.recs = make([]atomic.Pointer[nodeDesc], cfg.MetaSlots)
	s.scrubStamp = make([]uint32, cfg.MetaSlots)
	s.scrubPass = 1
	s.valueBad = make([]bool, cfg.MetaSlots)
	s.pool = pkt.NewPMPool(r, s.dataBase, cfg.DataBufSize, cfg.DataSlots)

	switch magic := r.ReadUint64(base + sbOMagic); magic {
	case sbMagic:
		if err := s.validateSuperblock(); err != nil {
			return nil, err
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
		return s, nil
	case 0:
		s.format()
		return s, nil
	default:
		// Neither our magic nor a fresh (zeroed) device: formatting here
		// would silently destroy whatever the region holds.
		return nil, fmt.Errorf("%w: unrecognized superblock magic %#x (refusing to format over existing data)", ErrCorrupt, magic)
	}
}

// Pool returns the data-area packet pool; the NIC uses it as its receive
// pool so request payloads land directly in the store's persistent data
// area.
func (s *Store) Pool() *pkt.Pool { return s.pool }

// Region returns the backing PM region.
func (s *Store) Region() *pmem.Region { return s.r }

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Stats returns a snapshot of operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Gets = s.gets.Load()
	st.Hits = s.hits.Load()
	st.FastGets = s.fastGets.Load()
	st.FastGetRetries = s.fastGetRetries.Load()
	st.FastGetFallbacks = s.fastGetFallbacks.Load()
	st.Records = s.count
	st.SlotsQuarantined = s.quarantined
	for _, h := range s.dataHeld {
		if h {
			st.SlotsHeld++
		}
	}
	return st
}

// Quarantined reports how many metadata slots recovery fenced off as
// corrupt.
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Sync commits any staged puts, then writes the region's durable image
// to its backing file, if any.
func (s *Store) Sync() error {
	s.mu.Lock()
	s.commitStagedLocked()
	s.mu.Unlock()
	return s.r.Sync()
}

// Close commits staged puts, syncs the backing region and releases its
// file. The error surfaces write failures that would otherwise silently
// lose the durable image on file-backed deployments.
func (s *Store) Close() error {
	s.mu.Lock()
	s.commitStagedLocked()
	s.mu.Unlock()
	return s.r.Close()
}

// Breakdown returns cumulative put-phase timings.
func (s *Store) Breakdown() Breakdown {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bd
}

// ResetBreakdown zeroes the phase timings.
func (s *Store) ResetBreakdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bd = Breakdown{}
}

func (s *Store) format() {
	s.writeSuperblock()
	s.metaFree = make([]int, 0, s.cfg.MetaSlots)
	for i := s.cfg.MetaSlots - 1; i >= 0; i-- {
		s.metaFree = append(s.metaFree, i)
	}
}

// writeSuperblock (re)writes the superblock from the configured geometry —
// formatting a fresh store, or repairing a damaged superblock during an
// online rebuild (the geometry is config-derived, so nothing in the
// superblock is unrecoverable state; the head tower it also zeroes is
// rebuilt by the slot rescan that follows every repair).
func (s *Store) writeSuperblock() {
	r := s.r
	zero := make([]byte, superblockSize)
	r.Write(s.base, zero)
	r.WriteUint64(s.base+sbOMetaBase, uint64(s.metaBase))
	r.WriteUint64(s.base+sbOMetaSlots, uint64(s.cfg.MetaSlots))
	r.WriteUint64(s.base+sbOSlotSize, uint64(s.cfg.SlotSize))
	r.WriteUint64(s.base+sbODataBase, uint64(s.dataBase))
	r.WriteUint64(s.base+sbODataSlots, uint64(s.cfg.DataSlots))
	r.WriteUint64(s.base+sbOBufSize, uint64(s.cfg.DataBufSize))
	r.WriteUint64(s.base+sbOMagic, sbMagic)
	r.Persist(s.base, superblockSize)
}

func (s *Store) validateSuperblock() error {
	r := s.r
	if int(r.ReadUint64(s.base+sbOMetaBase)) != s.metaBase ||
		int(r.ReadUint64(s.base+sbOMetaSlots)) != s.cfg.MetaSlots ||
		int(r.ReadUint64(s.base+sbOSlotSize)) != s.cfg.SlotSize ||
		int(r.ReadUint64(s.base+sbODataBase)) != s.dataBase ||
		int(r.ReadUint64(s.base+sbODataSlots)) != s.cfg.DataSlots ||
		int(r.ReadUint64(s.base+sbOBufSize)) != s.cfg.DataBufSize {
		return fmt.Errorf("%w: geometry mismatch with configuration", ErrCorrupt)
	}
	return nil
}

// --- slot accessors (idx is a slot index; links store idx+1) ---

func (s *Store) slotOff(idx int) int { return s.metaBase + idx*s.cfg.SlotSize }

func (s *Store) slot(idx int) []byte { return s.r.Slice(s.slotOff(idx), s.cfg.SlotSize) }

func (s *Store) headNext(level int) int {
	return int(s.r.ReadUint32(s.base+sbOTower+4*level)) - 1
}

func (s *Store) setHeadNext(level, idx int) {
	s.r.WriteUint32From(s.nd(), s.base+sbOTower+4*level, uint32(idx+1))
	// Mirror the head link for lock-free readers (fastget.go).
	s.fastHead[level].Store(uint32(idx + 1))
}

func slotNext(sl []byte, level int) int {
	return int(binary.LittleEndian.Uint32(sl[oTower+4*level:])) - 1
}

// keyPrefix packs the first 8 bytes of key big-endian (zero padded) so
// integer comparison matches bytes.Compare on the prefix.
func keyPrefix(key []byte) uint64 {
	var p [8]byte
	copy(p[:], key)
	return binary.BigEndian.Uint64(p[:])
}

// slotKey reads a slot's key bytes from the data area.
func (s *Store) slotKey(sl []byte) []byte {
	klen := int(binary.LittleEndian.Uint32(sl[oKLen:]))
	koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
	return s.r.Slice(koff, klen)
}

// compareKey orders key against the slot's key, using the inline prefix
// to avoid touching the data area when possible. charge controls whether
// a full key read bills PM latency (index walks bill only near the
// bottom of the tower, where reads miss caches).
func (s *Store) compareKey(key []byte, kp uint64, sl []byte, charge bool) int {
	sp := binary.LittleEndian.Uint64(sl[oKPrefix:])
	if kp != sp {
		if kp < sp {
			return -1
		}
		return 1
	}
	klen := int(binary.LittleEndian.Uint32(sl[oKLen:]))
	if len(key) <= 8 && klen <= 8 {
		// Prefix equal and both fit: compare lengths.
		switch {
		case len(key) == klen:
			return 0
		case len(key) < klen:
			return -1
		default:
			return 1
		}
	}
	koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
	if charge {
		s.r.TouchFrom(s.nd(), koff, min(klen, 64))
	}
	return bytes.Compare(key, s.r.Slice(koff, klen))
}

// findGE walks the persistent skip list to the first slot with key >=
// key, charging PM read latency per visited slot.
func (s *Store) findGE(key []byte, prev *[maxHeight]int) int {
	kp := keyPrefix(key)
	x := -1 // head
	level := maxHeight - 1
	for {
		var nxt int
		if x < 0 {
			nxt = s.headNext(level)
		} else {
			nxt = slotNext(s.slot(x), level)
		}
		if nxt >= 0 {
			// Model warm caches at the upper tower levels (few, hot
			// nodes); PM read latency bills at the bottom two levels.
			if level <= 1 {
				s.r.TouchFrom(s.nd(), s.slotOff(nxt), 64)
			}
			if s.compareKey(key, kp, s.slot(nxt), level <= 1) > 0 {
				x = nxt
				continue
			}
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return nxt
		}
		level--
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dataSlotIndex maps a region offset into the data area to its slot.
func (s *Store) dataSlotIndex(off int) int {
	d := off - s.dataBase
	if d < 0 || d >= s.cfg.DataSlots*s.cfg.DataBufSize {
		panic("pktstore: offset outside data area")
	}
	return d / s.cfg.DataBufSize
}

// AdoptBuf transfers a PM-pool packet buffer's data slot from the NIC
// pool to the store (refcount 0 until a record references it). It returns
// the slot's base offset. The kvserver adopts each received buffer whose
// bytes may become stored data, then calls ReleaseUnused when done
// parsing.
func (s *Store) AdoptBuf(b *pkt.Buf) int {
	base := s.pool.TakeOver(b)
	s.mu.Lock()
	idx := s.dataSlotIndex(base)
	s.dataRefs[idx] = 0
	s.mu.Unlock()
	return base
}

// ReleaseUnused returns an adopted data slot to the pool if no record
// ended up referencing it (e.g. the packet held only GET requests) and
// no external pin borrows it.
func (s *Store) ReleaseUnused(base int) {
	s.mu.Lock()
	idx := s.dataSlotIndex(base)
	unused := s.dataRefs[idx] == 0 && s.dataPins[idx].Load() == 0 && !s.dataHeld[idx]
	if unused {
		s.dataRefs[idx] = -1
	}
	s.mu.Unlock()
	if unused {
		s.pool.ReturnSlot(base)
	}
}

func (s *Store) refDataLocked(off int) {
	idx := s.dataSlotIndex(off)
	if s.dataRefs[idx] < 0 {
		panic("pktstore: referencing data in an unadopted slot")
	}
	s.dataRefs[idx]++
}

func (s *Store) unrefDataLocked(off int) {
	idx := s.dataSlotIndex(off)
	s.dataRefs[idx]--
	s.maybeRecycleLocked(idx)
}

// maybeRecycleLocked returns a store-owned data slot to the NIC pool
// once nothing refers to it: no record references, no external pins,
// and no media-damage fence.
func (s *Store) maybeRecycleLocked(idx int) {
	if s.dataRefs[idx] != 0 || s.dataHeld[idx] {
		return
	}
	if s.dataPins[idx].Load() != 0 {
		// A lock-free reader still borrows the slot. Publish the recycle
		// intent and re-check: sequential consistency guarantees either
		// this load sees the pin drain, or the final unpinner sees the
		// intent and re-enters the lock to finish the recycle (unpinFast)
		// — the slot cannot leak.
		s.recycleWanted[idx].Store(true)
		if s.dataPins[idx].Load() != 0 {
			return
		}
	}
	s.recycleWanted[idx].Store(false)
	s.dataRefs[idx] = -1
	s.pool.ReturnSlot(s.dataBase + idx*s.cfg.DataBufSize)
}

// PinExtents borrows every data slot an extent list touches — used to
// lend stored data to the transport for zero-copy transmission, and by
// the server to hold its key arena open. Pins are counted separately
// from record references and survive an online rebuild (the borrower
// still holds offsets into the slot), so the returned release function
// always drops them — a slot re-admits to the pool once both counts
// drain, no matter how many rebuilds happened in between. Safe to call
// from packet-buffer fragment hooks.
func (s *Store) PinExtents(exts []Extent) func() {
	s.mu.Lock()
	for _, e := range exts {
		idx := s.dataSlotIndex(e.Off)
		if s.dataRefs[idx] < 0 {
			panic("pktstore: pinning data in an unadopted slot")
		}
		s.dataPins[idx].Add(1)
	}
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			for _, e := range exts {
				idx := s.dataSlotIndex(e.Off)
				s.dataPins[idx].Add(-1)
				s.maybeRecycleLocked(idx)
			}
			s.mu.Unlock()
		})
	}
}

// Epoch returns the store's rebuild generation: it advances on every
// Rehydrate, which drops staged-but-uncommitted puts. A server that
// buffers acks against staged records snapshots the epoch before
// staging and re-checks it after Commit; a change means the group may
// have been dropped and those acks must not be flushed.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Slice exposes data-area bytes (zero-copy read path).
func (s *Store) Slice(off, n int) []byte { return s.r.Slice(off, n) }

// AllocDataSlot reserves a data slot for store-side use (for example the
// server's key arena) and marks it adopted with zero references. It
// returns -1 when the data area is exhausted. Pair with ReleaseUnused (or
// let record references recycle it).
func (s *Store) AllocDataSlot() int {
	off := s.pool.Slab().Alloc()
	if off < 0 {
		return -1
	}
	s.mu.Lock()
	idx := s.dataSlotIndex(off)
	s.dataRefs[idx] = 0
	s.mu.Unlock()
	return off
}

// WriteData writes bytes into the data area (key-arena writes).
func (s *Store) WriteData(off int, b []byte) { s.r.WriteFrom(s.nd(), off, b) }

// DataBufSize returns the data slot size.
func (s *Store) DataBufSize() int { return s.cfg.DataBufSize }
