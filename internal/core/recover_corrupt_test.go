package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// Corruption-path recovery tests: each damages persisted metadata in a
// specific way and requires recovery to quarantine exactly the damaged
// record — never serve it, never crash, never lose the healthy ones.

func corruptSetup(t *testing.T) (*pmem.Region, Config, *Store) {
	t.Helper()
	cfg := Config{MetaSlots: 64, SlotSize: 128, DataSlots: 64, DataBufSize: 512, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"alpha", "beta", "gamma"} {
		if err := s.Put([]byte(k), bytes.Repeat([]byte(k), 20)); err != nil {
			t.Fatal(err)
		}
	}
	return r, cfg, s
}

// slotOf locates the committed slot holding key.
func slotOf(t *testing.T, s *Store, key string) int {
	t.Helper()
	for i := 0; i < s.cfg.MetaSlots; i++ {
		sl := s.slot(i)
		if binary.LittleEndian.Uint32(sl[oMagic:]) != slotMagic ||
			binary.LittleEndian.Uint64(sl[oSeq:]) == 0 {
			continue
		}
		if string(s.slotKey(sl)) == key {
			return i
		}
	}
	t.Fatalf("no committed slot for %q", key)
	return -1
}

// patch applies new over old at region offset off in both the volatile
// and durable images (media damage, not a crash artifact).
func patch(r *pmem.Region, off int, old, new []byte) {
	for i := range old {
		if old[i] != new[i] {
			r.CorruptByte(off+i, old[i]^new[i])
		}
	}
}

// checkDegraded reopens the store and verifies: the damaged key is
// quarantined (missing, never wrong bytes), the healthy keys serve
// exactly, and the store still accepts writes.
func checkDegraded(t *testing.T, r *pmem.Region, cfg Config, damaged string) *Store {
	t.Helper()
	s2, err := Open(r, cfg)
	if err != nil {
		t.Fatalf("store must open degraded, got: %v", err)
	}
	if got := s2.Quarantined(); got != 1 {
		t.Fatalf("quarantined %d slots, want 1", got)
	}
	if _, ok, err := s2.Get([]byte(damaged)); ok || err != nil {
		t.Fatalf("damaged key %q: ok=%v err=%v, want a clean miss", damaged, ok, err)
	}
	for _, k := range []string{"alpha", "beta", "gamma"} {
		if k == damaged {
			continue
		}
		got, ok, err := s2.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, bytes.Repeat([]byte(k), 20)) {
			t.Fatalf("healthy key %q lost: ok=%v err=%v", k, ok, err)
		}
	}
	if err := s2.Put([]byte("post"), []byte("damage")); err != nil {
		t.Fatalf("degraded store must accept writes: %v", err)
	}
	return s2
}

// TestRecoverTruncatedSlot wipes the tail half of a committed slot —
// the state a torn multi-line metadata write-back leaves behind.
func TestRecoverTruncatedSlot(t *testing.T) {
	r, cfg, s := corruptSetup(t)
	off := s.slotOff(slotOf(t, s, "beta")) + 64
	old := append([]byte(nil), r.Slice(off, 64)...)
	patch(r, off, old, make([]byte, 64))
	checkDegraded(t, r, cfg, "beta")
}

// TestRecoverBadChecksum flips a single bit of a committed slot's
// stored CRC.
func TestRecoverBadChecksum(t *testing.T) {
	r, cfg, s := corruptSetup(t)
	r.CorruptByte(s.slotOff(slotOf(t, s, "gamma"))+oSlotSum, 0x01)
	checkDegraded(t, r, cfg, "gamma")
}

// TestRecoverExtentOutOfArea points a committed slot's first extent
// past the end of the data area — with the checksum recomputed to
// match, so the structural validation is what must reject it.
func TestRecoverExtentOutOfArea(t *testing.T) {
	r, cfg, s := corruptSetup(t)
	idx := slotOf(t, s, "alpha")
	off := s.slotOff(idx)
	old := append([]byte(nil), r.Slice(off, cfg.SlotSize)...)
	img := append([]byte(nil), old...)
	binary.LittleEndian.PutUint32(img[oExt:], uint32(s.dataBase+cfg.DataSlots*cfg.DataBufSize))
	binary.LittleEndian.PutUint32(img[oSlotSum:], slotSum(img, s.slotKey(old)))
	patch(r, off, old, img)
	checkDegraded(t, r, cfg, "alpha")
}

// TestRecoverDuplicateSeq clones a committed slot bit-for-bit into a
// free slot — same key, same sequence, both checksums valid. Recovery
// must keep exactly one copy and clear the other, not crash and not
// double-count.
func TestRecoverDuplicateSeq(t *testing.T) {
	r, cfg, s := corruptSetup(t)
	idx := slotOf(t, s, "beta")
	img := append([]byte(nil), r.Slice(s.slotOff(idx), cfg.SlotSize)...)
	free := -1
	for i := 0; i < cfg.MetaSlots; i++ {
		if binary.LittleEndian.Uint32(s.slot(i)[oMagic:]) == 0 {
			free = i
			break
		}
	}
	if free < 0 {
		t.Fatal("no free slot")
	}
	fOff := s.slotOff(free)
	patch(r, fOff, append([]byte(nil), r.Slice(fOff, cfg.SlotSize)...), img)

	s2, err := Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != 3 {
		t.Fatalf("duplicate seq double-counted: len %d, want 3", got)
	}
	v, ok, err := s2.Get([]byte("beta"))
	if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte("beta"), 20)) {
		t.Fatalf("beta lost to dedup: ok=%v err=%v", ok, err)
	}
	committed := 0
	for _, i := range []int{idx, free} {
		if binary.LittleEndian.Uint64(s2.slot(i)[oSeq:]) != 0 {
			committed++
		}
	}
	if committed != 1 {
		t.Fatalf("%d copies still committed, want 1 (loser's commit word cleared)", committed)
	}
	if got := s2.Quarantined(); got != 0 {
		t.Fatalf("valid duplicate quarantined (%d); dedup should retire it", got)
	}
}
