package core

import (
	"bytes"
	"fmt"
	"sync"

	"packetstore/internal/pkt"
	"packetstore/internal/pmem"
)

// shardAlign keeps every shard's superblock page-aligned so no cache
// line is shared between shards (independent flush/fence streams).
const shardAlign = 4096

// ShardOf maps a key to its owning shard: FNV-1a over the key bytes,
// folded onto the shard set. The kvserver's per-queue loops, the NIC RSS
// steering and aligned clients all use this one function — the
// hash-alignment invariant documented in DESIGN.md §5.7 holds only if
// every layer routes with ShardOf.
func ShardOf(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// shardStride returns the per-shard region footprint.
func shardStride(cfg Config) int {
	return (cfg.RegionSize() + shardAlign - 1) &^ (shardAlign - 1)
}

// ShardedRegionSize returns the PM region size shards copies of cfg
// need when laid side by side.
func ShardedRegionSize(cfg Config, shards int) int {
	if shards <= 1 {
		shards = 1
	}
	cc := cfg
	cc.fill()
	return shards * shardStride(cc)
}

// ShardedStore partitions a PM region into independent Stores — each
// with its own slab allocators, persistent skip-list index, commit
// sequence and mutex — and routes operations by key hash. With a single
// shard it is a transparent wrapper: the layout and behaviour are
// bit-for-bit those of a plain Store.
type ShardedStore struct {
	r      *pmem.Region
	cfg    Config
	stride int
	shards []*Store
}

// OpenSharded formats or recovers a ShardedStore of shards partitions
// over r. Each shard gets an independent copy of cfg's geometry.
// Recovery scans all shards in parallel: each partition's metadata scan
// and index rebuild is independent, so post-crash restart time scales
// with the largest shard, not the sum.
func OpenSharded(r *pmem.Region, cfg Config, shards int) (*ShardedStore, error) {
	if shards <= 0 {
		shards = 1
	}
	cc := cfg
	cc.fill()
	// Each shard's event loop is its own simulated core; PM stalls must
	// not busy-wait the other loops off the physical CPUs.
	r.SetMultiCore(shards > 1)
	ss := &ShardedStore{r: r, cfg: cc, stride: shardStride(cc), shards: make([]*Store, shards)}
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ss.shards[i], errs[i] = openAt(r, cc, i*ss.stride)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return ss, nil
}

// WrapSharded presents an existing single Store as a one-shard
// ShardedStore (servers use the sharded API uniformly).
func WrapSharded(s *Store) *ShardedStore {
	return &ShardedStore{r: s.r, cfg: s.cfg, stride: shardStride(s.cfg), shards: []*Store{s}}
}

// Shards returns the shard count.
func (ss *ShardedStore) Shards() int { return len(ss.shards) }

// Shard returns shard i's Store.
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// ShardFor returns the index of the shard owning key.
func (ss *ShardedStore) ShardFor(key []byte) int { return ShardOf(key, len(ss.shards)) }

// StoreFor returns the Store owning key.
func (ss *ShardedStore) StoreFor(key []byte) *Store { return ss.shards[ss.ShardFor(key)] }

// Region returns the backing PM region.
func (ss *ShardedStore) Region() *pmem.Region { return ss.r }

// Pools returns each shard's data-area packet pool, indexed by shard —
// the per-RSS-queue NIC receive pools of the aligned configuration.
func (ss *ShardedStore) Pools() []*pkt.Pool {
	pools := make([]*pkt.Pool, len(ss.shards))
	for i, s := range ss.shards {
		pools[i] = s.Pool()
	}
	return pools
}

// ShardByOff maps a region offset (e.g. a DMA buffer's PMOff) to the
// shard whose partition contains it, or -1 if outside every partition.
func (ss *ShardedStore) ShardByOff(off int) int {
	if off < 0 {
		return -1
	}
	i := off / ss.stride
	if i >= len(ss.shards) {
		return -1
	}
	return i
}

// Put routes the copying write to the owning shard.
func (ss *ShardedStore) Put(key, value []byte) error { return ss.StoreFor(key).Put(key, value) }

// PutExtents routes the zero-copy write to the owning shard. The
// extents and key must live in that shard's data area (the caller
// checks alignment; misaligned ingest takes Put).
func (ss *ShardedStore) PutExtents(key []byte, vlen int, opt PutOptions) error {
	return ss.StoreFor(key).PutExtents(key, vlen, opt)
}

// Get routes the read to the owning shard.
func (ss *ShardedStore) Get(key []byte) ([]byte, bool, error) { return ss.StoreFor(key).Get(key) }

// GetRef routes the zero-copy read to the owning shard.
func (ss *ShardedStore) GetRef(key []byte) (Ref, bool, error) { return ss.StoreFor(key).GetRef(key) }

// Delete routes the delete to the owning shard.
func (ss *ShardedStore) Delete(key []byte) (bool, error) { return ss.StoreFor(key).Delete(key) }

// Len sums live records across shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Len()
	}
	return n
}

// Stats aggregates per-shard counters.
func (ss *ShardedStore) Stats() Stats {
	var out Stats
	for _, s := range ss.shards {
		st := s.Stats()
		out.Puts += st.Puts
		out.Gets += st.Gets
		out.Deletes += st.Deletes
		out.Ranges += st.Ranges
		out.Hits += st.Hits
		out.ChecksumReused += st.ChecksumReused
		out.ChecksumComputed += st.ChecksumComputed
		out.BytesStored += st.BytesStored
		out.Records += st.Records
	}
	return out
}

// Breakdown aggregates per-shard put-phase timings.
func (ss *ShardedStore) Breakdown() Breakdown {
	var out Breakdown
	for _, s := range ss.shards {
		bd := s.Breakdown()
		out.Ops += bd.Ops
		out.Parse += bd.Parse
		out.Checksum += bd.Checksum
		out.Copy += bd.Copy
		out.Alloc += bd.Alloc
		out.Meta += bd.Meta
		out.Flush += bd.Flush
	}
	return out
}

// Range merges the per-shard ordered walks into one globally ordered
// result of up to limit records with start <= key < end. Each shard is
// consulted for at most limit records, then the sorted runs are merged.
func (ss *ShardedStore) Range(start, end []byte, limit int) ([]Record, error) {
	if len(ss.shards) == 1 {
		return ss.shards[0].Range(start, end, limit)
	}
	if limit <= 0 {
		limit = 1 << 30
	}
	runs := make([][]Record, len(ss.shards))
	for i, s := range ss.shards {
		recs, err := s.Range(start, end, limit)
		if err != nil {
			return nil, err
		}
		runs[i] = recs
	}
	return mergeRuns(runs, limit), nil
}

// mergeRuns k-way merges sorted record runs (keys are unique across
// shards, so no tie-breaking is needed).
func mergeRuns(runs [][]Record, limit int) []Record {
	var out []Record
	heads := make([]int, len(runs))
	for len(out) < limit {
		best := -1
		for i := range runs {
			if heads[i] >= len(runs[i]) {
				continue
			}
			if best < 0 || bytes.Compare(runs[i][heads[i]].Key, runs[best][heads[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

// Verify scrubs every shard, returning all keys whose stored bytes fail
// their transport-derived checksum.
func (ss *ShardedStore) Verify() ([][]byte, error) {
	var bad [][]byte
	for _, s := range ss.shards {
		b, err := s.Verify()
		if err != nil {
			return nil, err
		}
		bad = append(bad, b...)
	}
	return bad, nil
}
