package core

import (
	"bytes"
	"fmt"
	"sync"

	"packetstore/internal/pkt"
	"packetstore/internal/pmem"
)

// shardAlign keeps every shard's superblock page-aligned so no cache
// line is shared between shards (independent flush/fence streams).
const shardAlign = 4096

// ShardOf maps a key to its owning shard: FNV-1a over the key bytes,
// folded onto the shard set. The kvserver's per-queue loops, the NIC RSS
// steering and aligned clients all use this one function — the
// hash-alignment invariant documented in DESIGN.md §5.7 holds only if
// every layer routes with ShardOf.
func ShardOf(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// shardStride returns the per-shard region footprint.
func shardStride(cfg Config) int {
	return (cfg.RegionSize() + shardAlign - 1) &^ (shardAlign - 1)
}

// ShardedRegionSize returns the PM region size shards copies of cfg
// need when laid side by side, plus the parity partitions appended
// after them when Config.ParityGroup enables redundancy.
func ShardedRegionSize(cfg Config, shards int) int {
	if shards <= 1 {
		shards = 1
	}
	cc := cfg
	cc.fill()
	return shards*shardStride(cc) + len(parityGroups(cc, shards))*parityStride(cc)
}

// ShardedStore partitions a PM region into independent Stores — each
// with its own slab allocators, persistent skip-list index, commit
// sequence and mutex — and routes operations by key hash. With a single
// shard it is a transparent wrapper: the layout and behaviour are
// bit-for-bit those of a plain Store.
type ShardedStore struct {
	r      *pmem.Region
	cfg    Config
	stride int

	// mu guards shards/down/parked/rebuilding: a shard can be quarantined
	// at runtime (nil entry + reason) while the others keep serving, and
	// later rebuilt online and re-admitted.
	mu     sync.RWMutex
	shards []*Store
	down   []error // per shard: non-nil reason when quarantined
	// parked holds a quarantined shard's Store object so Rebuild can
	// rehydrate it in place — same object, same packet pool, so the NIC's
	// receive wiring survives quarantine and rejoin.
	parked []*Store
	// rebuilding marks shards with a rebuild in flight (still down, but a
	// second rebuild must not race the first).
	rebuilding []bool

	// owners is the per-shard serialisation handle: the goroutine holding
	// owners[i] has the exclusive right to stage writes into shard i and
	// to group-commit what it staged. The token is indexed by shard, not
	// by Store object, so it survives quarantine and rebuild — whichever
	// goroutine drives a shard (its home event loop or a stealer) must
	// hold the token across its stage/commit window. Reads need no token:
	// every Store read takes the shard's own mutex and self-barriers
	// (commits any open staged group) before serving.
	owners []sync.Mutex

	// notifyMu guards notify; notify (if set) is invoked, outside ss.mu,
	// after each serving->down transition — the healer's push wakeup.
	notifyMu sync.Mutex
	notify   func(shard int, reason error)

	// parity holds each shard's parity-group runtime (nil slice when
	// redundancy is off). Built once by initParity, immutable afterwards;
	// Rebuild re-attaches entries to freshly opened Stores.
	parity []*parityRT

	// NUMA placement (SetNUMAPlacement): socket count and each shard's
	// home node. Written once before serving, read-only afterwards.
	numaNodes int
	homeNodes []int
}

// OpenSharded formats or recovers a ShardedStore of shards partitions
// over r. Each shard gets an independent copy of cfg's geometry.
// Recovery scans all shards in parallel: each partition's metadata scan
// and index rebuild is independent, so post-crash restart time scales
// with the largest shard, not the sum.
//
// Graceful degradation: in a multi-shard store, a shard whose recovery
// fails is quarantined (its keyspace answers ErrShardDown) rather than
// failing the whole open; only a single-shard store, or all shards
// failing, makes Open return an error.
func OpenSharded(r *pmem.Region, cfg Config, shards int) (*ShardedStore, error) {
	if shards <= 0 {
		shards = 1
	}
	cc := cfg
	cc.fill()
	// Each shard's event loop is its own simulated core; PM stalls must
	// not busy-wait the other loops off the physical CPUs.
	r.SetMultiCore(shards > 1)
	ss := &ShardedStore{
		r: r, cfg: cc, stride: shardStride(cc),
		shards:     make([]*Store, shards),
		down:       make([]error, shards),
		parked:     make([]*Store, shards),
		rebuilding: make([]bool, shards),
		owners:     make([]sync.Mutex, shards),
	}
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ss.shards[i], errs[i] = openAt(r, cc, i*ss.stride)
		}(i)
	}
	wg.Wait()
	downCount := 0
	for i, err := range errs {
		if err != nil {
			if shards == 1 {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			ss.shards[i] = nil
			ss.down[i] = err
			downCount++
		}
	}
	if downCount == shards {
		return nil, fmt.Errorf("all %d shards failed: %w", shards, errs[0])
	}
	ss.initParity()
	return ss, nil
}

// WrapSharded presents an existing single Store as a one-shard
// ShardedStore (servers use the sharded API uniformly).
func WrapSharded(s *Store) *ShardedStore {
	return &ShardedStore{
		r: s.r, cfg: s.cfg, stride: shardStride(s.cfg),
		shards: []*Store{s}, down: make([]error, 1),
		parked: make([]*Store, 1), rebuilding: make([]bool, 1),
		owners: make([]sync.Mutex, 1),
	}
}

// Acquire blocks until the caller holds shard i's ownership token — the
// exclusive right to stage writes into the shard and group-commit them.
// The single-writer invariant of the event loops is carried by this
// token alone: any goroutine may drive any shard, provided it wraps its
// stage/commit window in Acquire/Release.
func (ss *ShardedStore) Acquire(i int) { ss.owners[i].Lock() }

// TryAcquire takes shard i's ownership token without blocking,
// reporting whether it succeeded — the steal path's admission gate: a
// contended token means another loop is already driving the shard's
// mutations.
func (ss *ShardedStore) TryAcquire(i int) bool { return ss.owners[i].TryLock() }

// Release returns shard i's ownership token. The holder must have
// committed (or abandoned to a poisoned-cycle abort) everything it
// staged: the next holder's group must never interleave with this one.
func (ss *ShardedStore) Release(i int) { ss.owners[i].Unlock() }

// OnQuarantine installs fn to be called — outside the router's lock,
// from whichever goroutine quarantined the shard — after every
// serving->down transition. The healer registers here so a quarantine
// wakes it immediately instead of waiting out the scrub-probe cadence.
func (ss *ShardedStore) OnQuarantine(fn func(shard int, reason error)) {
	ss.notifyMu.Lock()
	ss.notify = fn
	ss.notifyMu.Unlock()
}

// Quarantine fences shard i off at runtime: a recovery rescan or a
// Verify scrub found it untrustworthy. Its keyspace answers ErrShardDown
// from then on; the other shards keep serving. Idempotent — the first
// reason wins. The Store object is parked, not discarded, so Rebuild can
// rehydrate it in place and re-admit it without disturbing the NIC's
// pool wiring.
func (ss *ShardedStore) Quarantine(i int, reason error) {
	if reason == nil {
		reason = ErrCorrupt
	}
	ss.mu.Lock()
	transitioned := ss.down[i] == nil
	if transitioned {
		ss.down[i] = reason
		ss.parked[i] = ss.shards[i]
		ss.shards[i] = nil
	}
	ss.mu.Unlock()
	if transitioned {
		ss.notifyMu.Lock()
		fn := ss.notify
		ss.notifyMu.Unlock()
		if fn != nil {
			fn(i, reason)
		}
	}
}

// Rebuild re-runs recovery on quarantined shard i's PM area while the
// other shards keep serving, and re-admits the shard atomically on
// success. A parked Store (runtime quarantine) is rehydrated in place —
// same object, same packet pool; a shard that never opened (boot-time
// failure) is retried with a fresh open. Returns nil if the shard is
// already serving. On failure the shard stays down with the rebuild
// error as its new reason; the supervisor retries with backoff.
func (ss *ShardedStore) Rebuild(i int) error {
	ss.mu.Lock()
	if ss.down[i] == nil {
		ss.mu.Unlock()
		return nil
	}
	if ss.rebuilding[i] {
		ss.mu.Unlock()
		return fmt.Errorf("pktstore: shard %d rebuild already in progress", i)
	}
	ss.rebuilding[i] = true
	st := ss.parked[i]
	ss.mu.Unlock()

	// The expensive part runs outside ss.mu: the other shards' routing
	// is never blocked by a rebuild.
	var err error
	var reconsBefore uint64
	if st != nil {
		reconsBefore = st.Stats().Reconstructions
		err = st.Rehydrate()
	} else {
		st, err = openAt(ss.r, ss.cfg, i*ss.stride)
		if err == nil && ss.parity != nil {
			// A fresh open recovers without parity attached (slots whose CRC
			// fails are fenced, not repaired). Attach the group runtime and,
			// if anything was fenced, run the reconstruction pass over it.
			st.mu.Lock()
			st.parity = ss.parity[i]
			st.mu.Unlock()
			if st.Quarantined() > 0 {
				err = st.Rehydrate()
			}
		}
	}

	if err == nil && st.Stats().Reconstructions > reconsBefore {
		// The rescan had to repair records, so the member's data area lost
		// content — including free-space bytes the rescan does not restore.
		// Re-derive the group's parity from what the members hold now.
		ss.resyncGroupParity(st)
	}

	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.rebuilding[i] = false
	if err != nil {
		ss.down[i] = fmt.Errorf("rebuild failed: %w", err)
		return err
	}
	ss.shards[i] = st
	ss.parked[i] = nil
	ss.down[i] = nil
	return nil
}

// ShardStatus is one shard's serving state for health reporting.
type ShardStatus struct {
	// State is "serving", "rebuilding" or "down".
	State string
	// Reason is the quarantine reason for a non-serving shard.
	Reason string
}

// States snapshots every shard's serving state — the health endpoint's
// data source.
func (ss *ShardedStore) States() []ShardStatus {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	out := make([]ShardStatus, len(ss.down))
	for i := range ss.down {
		switch {
		case ss.down[i] == nil:
			out[i].State = "serving"
		case ss.rebuilding[i]:
			out[i].State = "rebuilding"
			out[i].Reason = ss.down[i].Error()
		default:
			out[i].State = "down"
			out[i].Reason = ss.down[i].Error()
		}
	}
	return out
}

// ServingStore returns shard i's Store when it is serving, or the typed
// ErrShardDown explaining why it is not — one lock round trip for
// callers that need both (the event loops' per-request gate).
func (ss *ShardedStore) ServingStore(i int) (*Store, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if err := ss.shardErrLocked(i); err != nil {
		return nil, err
	}
	return ss.shards[i], nil
}

// Health returns per-shard status: nil for a serving shard, the
// quarantine reason for a down one.
func (ss *ShardedStore) Health() []error {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	out := make([]error, len(ss.down))
	copy(out, ss.down)
	return out
}

// DownShards counts quarantined shards.
func (ss *ShardedStore) DownShards() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	n := 0
	for _, e := range ss.down {
		if e != nil {
			n++
		}
	}
	return n
}

// ShardErr returns nil when shard i is serving, or its typed
// ErrShardDown (carrying index and reason) when quarantined.
func (ss *ShardedStore) ShardErr(i int) error {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.shardErrLocked(i)
}

func (ss *ShardedStore) shardErrLocked(i int) error {
	if ss.down[i] == nil {
		return nil
	}
	return fmt.Errorf("%w: shard %d: %v", ErrShardDown, i, ss.down[i])
}

// storeOr resolves key's shard, or the ErrShardDown explaining why it
// cannot serve.
func (ss *ShardedStore) storeOr(key []byte) (*Store, error) {
	i := ShardOf(key, ss.shardCount())
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if err := ss.shardErrLocked(i); err != nil {
		return nil, err
	}
	return ss.shards[i], nil
}

// shardCount returns the partition count (fixed at open; no lock
// needed for the length itself).
func (ss *ShardedStore) shardCount() int { return len(ss.down) }

// Shards returns the shard count (serving or not).
func (ss *ShardedStore) Shards() int { return ss.shardCount() }

// Shard returns shard i's Store, or nil if it is quarantined.
func (ss *ShardedStore) Shard(i int) *Store {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return ss.shards[i]
}

// ShardFor returns the index of the shard owning key.
func (ss *ShardedStore) ShardFor(key []byte) int { return ShardOf(key, ss.shardCount()) }

// StoreFor returns the Store owning key, or nil if that shard is
// quarantined (storeOr returns the typed error instead).
func (ss *ShardedStore) StoreFor(key []byte) *Store { return ss.Shard(ss.ShardFor(key)) }

// Region returns the backing PM region.
func (ss *ShardedStore) Region() *pmem.Region { return ss.r }

// Pools returns each shard's data-area packet pool, indexed by shard —
// the per-RSS-queue NIC receive pools of the aligned configuration. A
// quarantined shard's entry is nil; deployments that wire NIC queues to
// shard pools require every shard healthy (NewCluster checks).
func (ss *ShardedStore) Pools() []*pkt.Pool {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	pools := make([]*pkt.Pool, len(ss.shards))
	for i, s := range ss.shards {
		if s != nil {
			pools[i] = s.Pool()
		}
	}
	return pools
}

// ShardByOff maps a region offset (e.g. a DMA buffer's PMOff) to the
// shard whose partition contains it, or -1 if outside every partition.
func (ss *ShardedStore) ShardByOff(off int) int {
	if off < 0 {
		return -1
	}
	i := off / ss.stride
	if i >= len(ss.shards) {
		return -1
	}
	return i
}

// Put routes the copying write to the owning shard; a quarantined
// shard's keys answer ErrShardDown.
func (ss *ShardedStore) Put(key, value []byte) error {
	s, err := ss.storeOr(key)
	if err != nil {
		return err
	}
	return s.Put(key, value)
}

// PutExtents routes the zero-copy write to the owning shard. The
// extents and key must live in that shard's data area (the caller
// checks alignment; misaligned ingest takes Put).
func (ss *ShardedStore) PutExtents(key []byte, vlen int, opt PutOptions) error {
	s, err := ss.storeOr(key)
	if err != nil {
		return err
	}
	return s.PutExtents(key, vlen, opt)
}

// PutStaged routes the copying write to the owning shard's staging
// area; Commit makes all shards' staged puts durable.
func (ss *ShardedStore) PutStaged(key, value []byte) error {
	s, err := ss.storeOr(key)
	if err != nil {
		return err
	}
	return s.PutStaged(key, value)
}

// PutExtentsStaged routes the zero-copy write to the owning shard's
// staging area.
func (ss *ShardedStore) PutExtentsStaged(key []byte, vlen int, opt PutOptions) error {
	s, err := ss.storeOr(key)
	if err != nil {
		return err
	}
	return s.PutExtentsStaged(key, vlen, opt)
}

// Commit group-commits every serving shard's staged puts, in shard
// order (deterministic persist-op sequence for fault replay). Shards
// with nothing staged cost one mutex round trip.
func (ss *ShardedStore) Commit() {
	for _, s := range ss.serving() {
		s.Commit()
	}
}

// Get routes the read to the owning shard.
func (ss *ShardedStore) Get(key []byte) ([]byte, bool, error) {
	s, err := ss.storeOr(key)
	if err != nil {
		return nil, false, err
	}
	return s.Get(key)
}

// GetRef routes the zero-copy read to the owning shard.
func (ss *ShardedStore) GetRef(key []byte) (Ref, bool, error) {
	s, err := ss.storeOr(key)
	if err != nil {
		return Ref{}, false, err
	}
	return s.GetRef(key)
}

// Delete routes the delete to the owning shard.
func (ss *ShardedStore) Delete(key []byte) (bool, error) {
	s, err := ss.storeOr(key)
	if err != nil {
		return false, err
	}
	return s.Delete(key)
}

// serving snapshots the live shards (quarantined ones excluded).
func (ss *ShardedStore) serving() []*Store {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	out := make([]*Store, 0, len(ss.shards))
	for _, s := range ss.shards {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Len sums live records across serving shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, s := range ss.serving() {
		n += s.Len()
	}
	return n
}

// Stats aggregates per-shard counters over serving shards.
func (ss *ShardedStore) Stats() Stats {
	var out Stats
	for _, s := range ss.serving() {
		st := s.Stats()
		out.Puts += st.Puts
		out.Gets += st.Gets
		out.Deletes += st.Deletes
		out.Ranges += st.Ranges
		out.Hits += st.Hits
		out.ChecksumReused += st.ChecksumReused
		out.ChecksumComputed += st.ChecksumComputed
		out.BytesStored += st.BytesStored
		out.Records += st.Records
		out.SlotsQuarantined += st.SlotsQuarantined
		out.GroupCommits += st.GroupCommits
		out.GroupedPuts += st.GroupedPuts
		out.ParityWrites += st.ParityWrites
		out.Reconstructions += st.Reconstructions
		out.UnrecoverableSlots += st.UnrecoverableSlots
		out.SlotsHeld += st.SlotsHeld
		out.FastGets += st.FastGets
		out.FastGetRetries += st.FastGetRetries
		out.FastGetFallbacks += st.FastGetFallbacks
	}
	return out
}

// Breakdown aggregates per-shard put-phase timings.
func (ss *ShardedStore) Breakdown() Breakdown {
	var out Breakdown
	for _, s := range ss.serving() {
		bd := s.Breakdown()
		out.Ops += bd.Ops
		out.Parse += bd.Parse
		out.Checksum += bd.Checksum
		out.Copy += bd.Copy
		out.Alloc += bd.Alloc
		out.Meta += bd.Meta
		out.Flush += bd.Flush
	}
	return out
}

// Range merges the per-shard ordered walks into one globally ordered
// result of up to limit records with start <= key < end. Each shard is
// consulted for at most limit records, then the sorted runs are merged.
func (ss *ShardedStore) Range(start, end []byte, limit int) ([]Record, error) {
	// The hash split spreads every key range across all shards, so a
	// range over a store with a quarantined shard would silently omit
	// that shard's records — fail it explicitly instead.
	ss.mu.RLock()
	for i := range ss.down {
		if err := ss.shardErrLocked(i); err != nil {
			ss.mu.RUnlock()
			return nil, err
		}
	}
	shards := make([]*Store, len(ss.shards))
	copy(shards, ss.shards)
	ss.mu.RUnlock()
	if len(shards) == 1 {
		return shards[0].Range(start, end, limit)
	}
	if limit <= 0 {
		limit = 1 << 30
	}
	runs := make([][]Record, len(shards))
	for i, s := range shards {
		recs, err := s.Range(start, end, limit)
		if err != nil {
			return nil, err
		}
		runs[i] = recs
	}
	return mergeRuns(runs, limit), nil
}

// mergeRuns k-way merges sorted record runs (keys are unique across
// shards, so no tie-breaking is needed).
func mergeRuns(runs [][]Record, limit int) []Record {
	var out []Record
	heads := make([]int, len(runs))
	for len(out) < limit {
		best := -1
		for i := range runs {
			if heads[i] >= len(runs[i]) {
				continue
			}
			if best < 0 || bytes.Compare(runs[i][heads[i]].Key, runs[best][heads[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

// Verify scrubs every serving shard, returning all keys whose stored
// bytes fail their transport-derived checksum.
func (ss *ShardedStore) Verify() ([][]byte, error) {
	var bad [][]byte
	for _, s := range ss.serving() {
		b, err := s.Verify()
		if err != nil {
			return nil, err
		}
		bad = append(bad, b...)
	}
	return bad, nil
}

// VerifyShards scrubs each serving shard and quarantines any whose scrub
// errors or reports corrupt records. It returns the number of shards
// newly quarantined — the graceful-degradation entry point for periodic
// integrity sweeps.
func (ss *ShardedStore) VerifyShards() int {
	n := 0
	for i := 0; i < ss.shardCount(); i++ {
		s := ss.Shard(i)
		if s == nil {
			continue
		}
		bad, err := s.Verify()
		switch {
		case err != nil:
			ss.Quarantine(i, err)
			n++
		case len(bad) > 0:
			ss.Quarantine(i, fmt.Errorf("%w: %d records failed checksum scrub", ErrCorrupt, len(bad)))
			n++
		}
	}
	return n
}

// Sync commits all shards' staged puts, then writes the region's
// durable image to its backing file, if any.
func (ss *ShardedStore) Sync() error {
	ss.Commit()
	return ss.r.Sync()
}

// Close commits staged puts, syncs the backing region and releases its
// file, surfacing write errors instead of dropping them.
func (ss *ShardedStore) Close() error {
	ss.Commit()
	return ss.r.Close()
}
