package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/pmem"
	"packetstore/internal/pskiplist"
	"packetstore/internal/wal"
)

// Mode selects the baseline configuration.
type Mode int

const (
	// LevelDBSim: DRAM memtable + WAL + SSTables (LevelDB as shipped).
	LevelDBSim Mode = iota
	// NoveLSMSim: persistent-skip-list memtable in PM, no WAL — the
	// configuration the paper measures.
	NoveLSMSim
)

// Errors.
var (
	ErrClosed = errors.New("lsm: db closed")
	ErrPMFull = errors.New("lsm: persistent memtable area exhausted")
)

// Options configures a DB.
type Options struct {
	Mode    Mode
	Storage Storage // SSTables + WAL + MANIFEST; default in-memory

	// PM configures NoveLSMSim: memtable arenas live in
	// [PMBase, PMBase+PMSize) of the region, ArenaSize bytes each.
	PM        *pmem.Region
	PMBase    int
	PMSize    int
	ArenaSize int // default 4MB

	// MemtableBytes rotates the memtable when its arena reaches this
	// size (default: ArenaSize for PM, 4MB for DRAM).
	MemtableBytes int

	// DisableCompaction keeps all data in (PM) memtables, the paper's
	// experimental configuration.
	DisableCompaction bool

	// Checksum computes and stores a CRC32C over key+value on every put
	// (the integrity work Table 1 prices at 1.77µs/KB) and verifies on
	// get when VerifyOnGet is set.
	Checksum    bool
	VerifyOnGet bool
}

// Breakdown accumulates per-phase time over all puts — the direct
// instrumentation behind the Table 1 reproduction.
type Breakdown struct {
	Ops      uint64
	Prep     time.Duration // write-batch encoding
	Checksum time.Duration // CRC32C over key+value
	Insert   pskiplist.InsertStats
	WALTime  time.Duration // LevelDBSim only
}

// DB is the baseline key-value store.
type DB struct {
	mu  sync.Mutex
	opt Options

	seq      uint64
	mem      memtable
	imms     []memtable // newest first
	arenas   []int      // NoveLSMSim: arena base of mem (index 0) and imms
	freeAr   []int      // recycled arena bases
	arenaTag uint64

	walBuf bytes.Buffer
	walW   *wal.Writer
	logNum int

	levels   [numLevels][]*tableMeta
	tableNum int

	bd     Breakdown
	closed bool
	batch  *Batch // reusable per-put batch (DB calls are serialized by mu)
}

const numLevels = 7

// tableMeta describes one SSTable.
type tableMeta struct {
	name        string
	num         int
	size        int
	first, last []byte // internal keys
	rdr         *sstableReader
}

// Open creates or reopens a DB.
func Open(opt Options) (*DB, error) {
	if opt.Storage == nil {
		opt.Storage = NewMemStorage()
	}
	if opt.ArenaSize == 0 {
		opt.ArenaSize = 4 << 20
	}
	if opt.MemtableBytes == 0 {
		if opt.Mode == NoveLSMSim {
			opt.MemtableBytes = opt.ArenaSize - (opt.ArenaSize / 8)
		} else {
			opt.MemtableBytes = 4 << 20
		}
	}
	if opt.Mode == NoveLSMSim {
		if opt.PM == nil || opt.PMSize < opt.ArenaSize {
			return nil, fmt.Errorf("lsm: NoveLSMSim needs a PM area of at least one arena")
		}
	}
	db := &DB{opt: opt, batch: NewBatch()}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

// recover loads the manifest, tables, and memtables.
func (db *DB) recover() error {
	if err := db.loadManifest(); err != nil {
		return err
	}
	switch db.opt.Mode {
	case LevelDBSim:
		// replayLogs installs the recovered memtable.
		if err := db.replayLogs(); err != nil {
			return err
		}
		db.logNum++
		db.walBuf.Reset()
		db.walW = wal.NewWriter(&db.walBuf)
	case NoveLSMSim:
		if err := db.recoverArenas(); err != nil {
			return err
		}
	}
	return nil
}

// recoverArenas scans the PM area for surviving memtable arenas and
// reconstructs the memtable stack; the arena with the highest tag stays
// mutable.
func (db *DB) recoverArenas() error {
	type found struct {
		base int
		mt   *pmMemtable
		tag  uint64
	}
	var hits []found
	n := db.opt.PMSize / db.opt.ArenaSize
	for i := 0; i < n; i++ {
		base := db.opt.PMBase + i*db.opt.ArenaSize
		mt, err := recoverPMMemtable(db.opt.PM, base, db.opt.ArenaSize)
		if err != nil {
			db.freeAr = append(db.freeAr, base)
			continue
		}
		hits = append(hits, found{base, mt, mt.sl.Tag()})
	}
	if len(hits) == 0 {
		// Fresh database.
		return db.newPMMemtableLocked()
	}
	// Sort by tag ascending; newest (highest tag) becomes mutable.
	for i := 0; i < len(hits); i++ {
		for j := i + 1; j < len(hits); j++ {
			if hits[j].tag < hits[i].tag {
				hits[i], hits[j] = hits[j], hits[i]
			}
		}
	}
	newest := hits[len(hits)-1]
	db.mem = newest.mt
	db.arenas = []int{newest.base}
	db.arenaTag = newest.tag
	for i := len(hits) - 2; i >= 0; i-- {
		db.imms = append(db.imms, hits[i].mt)
		db.arenas = append(db.arenas, hits[i].base)
	}
	// Restore the sequence counter from the highest stored seq.
	for _, h := range hits {
		it := h.mt.iter()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if s := ikey(it.Key()).seq(); s > db.seq {
				db.seq = s
			}
		}
	}
	return nil
}

// newPMMemtableLocked carves the next arena and installs a fresh mutable
// memtable.
func (db *DB) newPMMemtableLocked() error {
	base, ok := db.nextArenaLocked()
	if !ok {
		return ErrPMFull
	}
	db.arenaTag++
	mt := newPMMemtable(db.opt.PM, base, db.opt.ArenaSize)
	mt.sl.SetTag(db.arenaTag)
	db.mem = mt
	db.arenas = append([]int{base}, db.arenas...)
	return nil
}

func (db *DB) nextArenaLocked() (int, bool) {
	if len(db.freeAr) > 0 {
		b := db.freeAr[len(db.freeAr)-1]
		db.freeAr = db.freeAr[:len(db.freeAr)-1]
		return b, true
	}
	used := len(db.arenas) * db.opt.ArenaSize
	if used+db.opt.ArenaSize > db.opt.PMSize {
		return 0, false
	}
	return db.opt.PMBase + used, true
}

// Breakdown returns the cumulative phase timings.
func (db *DB) Breakdown() Breakdown {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := db.bd
	if mt, ok := db.mem.(*pmMemtable); ok {
		out.Insert.Add(mt.sl.Stats())
	}
	return out
}

// ResetBreakdown zeroes the phase timings.
func (db *DB) ResetBreakdown() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.bd = Breakdown{}
	if mt, ok := db.mem.(*pmMemtable); ok {
		*mt.sl.Stats() = pskiplist.InsertStats{}
	}
}

// Put stores key -> value.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.applyLocked(KindValue, key, value)
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.applyLocked(KindDelete, key, nil)
}

func (db *DB) applyLocked(kind Kind, key, value []byte) error {
	if db.closed {
		return ErrClosed
	}
	db.bd.Ops++

	// Phase 1 — integrity checksum over key+value. The stored value
	// carries the CRC so it travels through WAL, memtable and SSTables
	// uniformly.
	var crc [4]byte
	stored := value
	if db.opt.Checksum && kind == KindValue {
		t1 := time.Now()
		c := checksum.UpdateCRC32C(checksum.CRC32C(key), value)
		crc[0], crc[1], crc[2], crc[3] = byte(c), byte(c>>8), byte(c>>16), byte(c>>24)
		db.bd.Checksum += time.Since(t1)
		stored = append(append(make([]byte, 0, len(value)+4), value...), crc[:]...)
	}

	// Phase 2 — request preparation: encode the write batch.
	t0 := time.Now()
	b := db.batch
	b.Reset()
	if kind == KindValue {
		b.Put(key, stored)
	} else {
		b.Delete(key)
	}
	b.setSeq(db.seq + 1)
	db.bd.Prep += time.Since(t0)

	// Phase 3 — durability log (LevelDBSim only).
	if db.opt.Mode == LevelDBSim {
		t2 := time.Now()
		if err := db.walW.Append(b.repr()); err != nil {
			return err
		}
		db.bd.WALTime += time.Since(t2)
	}

	// Phase 4 — memtable copy + allocation + insertion (instrumented
	// inside the PM skip list itself).
	if !db.mem.add(db.seq+1, kind, key, stored) {
		// PM arena full: rotate and retry once.
		if err := db.rotateLocked(); err != nil {
			return err
		}
		if !db.mem.add(db.seq+1, kind, key, stored) {
			return ErrPMFull
		}
	}
	db.seq++

	if db.mem.approximateBytes() >= db.opt.MemtableBytes {
		if err := db.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked retires the mutable memtable and installs a fresh one,
// compacting when allowed.
func (db *DB) rotateLocked() error {
	if db.opt.Mode == NoveLSMSim {
		if cur, ok := db.mem.(*pmMemtable); ok {
			if sts := cur.sl.Stats(); sts != nil {
				db.bd.Insert.Add(sts)
			}
		}
	}
	db.imms = append([]memtable{db.mem}, db.imms...)
	switch db.opt.Mode {
	case LevelDBSim:
		db.mem = newDRAMMemtable()
		db.logNum++
		// Retire the old log: its contents are covered by the immutable
		// memtable, which will be flushed below (or kept in memory when
		// compaction is disabled — in that case the log stays too).
		if !db.opt.DisableCompaction {
			if err := db.flushOldestImmLocked(); err != nil {
				return err
			}
		}
		db.walBuf.Reset()
		db.walW = wal.NewWriter(&db.walBuf)
	case NoveLSMSim:
		if !db.opt.DisableCompaction {
			if err := db.flushOldestImmLocked(); err != nil {
				return err
			}
		}
		if err := db.newPMMemtableLocked(); err != nil {
			return err
		}
	}
	return db.maybeCompactLocked()
}

// Get returns the newest value for key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	v, deleted, found := db.mem.get(key, MaxSeq)
	if !found {
		for _, imm := range db.imms {
			if v, deleted, found = imm.get(key, MaxSeq); found {
				break
			}
		}
	}
	if !found {
		var err error
		v, deleted, found, err = db.tableGetLocked(key)
		if err != nil {
			return nil, false, err
		}
	}
	if !found || deleted {
		return nil, false, nil
	}
	return db.decodeValue(key, v)
}

// decodeValue strips and (optionally) verifies the stored checksum.
func (db *DB) decodeValue(key, stored []byte) ([]byte, bool, error) {
	if !db.opt.Checksum {
		return bytes.Clone(stored), true, nil
	}
	if len(stored) < 4 {
		return nil, false, fmt.Errorf("lsm: stored value shorter than checksum")
	}
	val := stored[:len(stored)-4]
	if db.opt.VerifyOnGet {
		c := stored[len(stored)-4:]
		want := uint32(c[0]) | uint32(c[1])<<8 | uint32(c[2])<<16 | uint32(c[3])<<24
		if got := checksum.UpdateCRC32C(checksum.CRC32C(key), val); got != want {
			return nil, false, fmt.Errorf("lsm: checksum mismatch for key %q", key)
		}
	}
	return bytes.Clone(val), true, nil
}

// Seq returns the current sequence number (diagnostics).
func (db *DB) Seq() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.seq
}

// Immutables reports how many retired memtables are queued.
func (db *DB) Immutables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.imms)
}

// TableCount returns the number of live SSTables per level.
func (db *DB) TableCount() [numLevels]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out [numLevels]int
	for i := range db.levels {
		out[i] = len(db.levels[i])
	}
	return out
}

// Close flushes state (manifest) and closes the DB.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	return db.saveManifest()
}
