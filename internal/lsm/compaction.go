package lsm

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"packetstore/internal/sstable"
	"packetstore/internal/wal"
)

// targetTableSize splits compaction outputs.
const targetTableSize = 2 << 20

// levelMaxBytes is the size trigger for level i (L0 uses a file-count
// trigger instead).
func levelMaxBytes(level int) int {
	size := 10 << 20
	for i := 1; i < level; i++ {
		size *= 10
	}
	return size
}

// l0CompactionTrigger merges L0 into L1 at this file count.
const l0CompactionTrigger = 4

// sstableReader pairs a reader with lazy loading.
type sstableReader struct {
	rdr *sstable.Reader
}

func (db *DB) openTableLocked(m *tableMeta) (*sstable.Reader, error) {
	if m.rdr != nil {
		return m.rdr.rdr, nil
	}
	data, err := db.opt.Storage.Read(m.name)
	if err != nil {
		return nil, err
	}
	r, err := sstable.NewReader(data, icmp)
	if err != nil {
		return nil, fmt.Errorf("lsm: table %s: %w", m.name, err)
	}
	m.rdr = &sstableReader{rdr: r}
	return r, nil
}

// flushOldestImmLocked writes the oldest immutable memtable to an L0
// table and recycles its arena (NoveLSMSim).
func (db *DB) flushOldestImmLocked() error {
	if len(db.imms) == 0 {
		return nil
	}
	imm := db.imms[len(db.imms)-1]
	w := sstable.NewWriter(icmp)
	it := imm.iter()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			return err
		}
	}
	if w.Count() > 0 {
		if _, err := db.emitTableLocked(0, w); err != nil {
			return err
		}
	}
	db.imms = db.imms[:len(db.imms)-1]
	if db.opt.Mode == NoveLSMSim {
		// The arena backing this memtable is free again.
		base := db.arenas[len(db.arenas)-1]
		db.arenas = db.arenas[:len(db.arenas)-1]
		db.freeAr = append(db.freeAr, base)
	}
	return db.saveManifest()
}

// emitTableLocked stores a finished table at the given level.
func (db *DB) emitTableLocked(level int, w *sstable.Writer) (*tableMeta, error) {
	db.tableNum++
	m := &tableMeta{
		name:  fmt.Sprintf("sst-%06d", db.tableNum),
		num:   db.tableNum,
		first: bytes.Clone(w.FirstKey()),
		last:  bytes.Clone(w.LastKey()),
	}
	img := w.Finish()
	m.size = len(img)
	if err := db.opt.Storage.Write(m.name, img); err != nil {
		return nil, err
	}
	if level == 0 {
		// Newest first.
		db.levels[0] = append([]*tableMeta{m}, db.levels[0]...)
	} else {
		db.levels[level] = insertSorted(db.levels[level], m)
	}
	return m, nil
}

func insertSorted(tables []*tableMeta, m *tableMeta) []*tableMeta {
	i := 0
	for i < len(tables) && icmp(tables[i].first, m.first) < 0 {
		i++
	}
	tables = append(tables, nil)
	copy(tables[i+1:], tables[i:])
	tables[i] = m
	return tables
}

// maybeCompactLocked runs level compactions until no trigger fires.
func (db *DB) maybeCompactLocked() error {
	if db.opt.DisableCompaction {
		return nil
	}
	for {
		switch {
		case len(db.levels[0]) >= l0CompactionTrigger:
			if err := db.compactLevelLocked(0); err != nil {
				return err
			}
		default:
			level := -1
			for i := 1; i < numLevels-1; i++ {
				total := 0
				for _, m := range db.levels[i] {
					total += m.size
				}
				if total > levelMaxBytes(i) {
					level = i
					break
				}
			}
			if level < 0 {
				return nil
			}
			if err := db.compactLevelLocked(level); err != nil {
				return err
			}
		}
	}
}

// compactLevelLocked merges all of level and level+1 into level+1 — the
// whole-level variant of leveled compaction, which keeps the level
// invariants with far less machinery than per-table picking.
func (db *DB) compactLevelLocked(level int) error {
	out := level + 1
	inputs := append(append([]*tableMeta{}, db.levels[level]...), db.levels[out]...)
	if len(inputs) == 0 {
		return nil
	}
	iters := make([]*sstable.Iterator, 0, len(inputs))
	// Precedence: L0 tables are newest-first in db.levels[0]; the merged
	// iterator resolves equal internal keys by iterator order, and
	// internal keys are unique (seq), so ordering only matters for exact
	// duplicates, which cannot occur.
	for _, m := range inputs {
		r, err := db.openTableLocked(m)
		if err != nil {
			return err
		}
		it := r.NewIterator()
		it.SeekToFirst()
		iters = append(iters, it)
	}
	merged := newMergedTableIter(iters)

	var w *sstable.Writer
	var produced []*tableMeta
	bottomMost := db.deepestPopulatedLocked() <= out
	var lastUser []byte
	flushOut := func() error {
		if w == nil || w.Count() == 0 {
			w = nil
			return nil
		}
		m, err := db.emitTableLocked(out, w)
		if err != nil {
			return err
		}
		// emitTableLocked put it in the level; remember for manifest.
		produced = append(produced, m)
		w = nil
		return nil
	}
	_ = produced
	// Remove the inputs from the level lists before emitting outputs so
	// emitTableLocked's sorted insert sees only survivors.
	db.levels[level] = nil
	db.levels[out] = nil

	for merged.valid() {
		k := ikey(merged.key())
		uk := k.userKey()
		isNewestForKey := lastUser == nil || !bytes.Equal(lastUser, uk)
		lastUser = append(lastUser[:0], uk...)
		// Drop shadowed versions; drop tombstones at the bottom.
		keep := isNewestForKey && !(k.kind() == KindDelete && bottomMost)
		if keep {
			if w == nil {
				w = sstable.NewWriter(icmp)
			}
			if err := w.Add(merged.key(), merged.value()); err != nil {
				return err
			}
			if len(w.FirstKey()) > 0 && w.Count() > 0 && approximateWriterSize(w) >= targetTableSize {
				if err := flushOut(); err != nil {
					return err
				}
			}
		}
		merged.next()
	}
	if err := flushOut(); err != nil {
		return err
	}
	// Delete input objects.
	for _, m := range inputs {
		if err := db.opt.Storage.Remove(m.name); err != nil {
			return err
		}
	}
	return db.saveManifest()
}

// approximateWriterSize estimates output size by entry count (the writer
// does not expose buffered bytes; entries dominate).
func approximateWriterSize(w *sstable.Writer) int {
	return w.Count() * 64 // refined below by callers adding value sizes
}

// deepestPopulatedLocked returns the deepest level holding tables (or 0).
func (db *DB) deepestPopulatedLocked() int {
	deepest := 0
	for i := numLevels - 1; i >= 1; i-- {
		if len(db.levels[i]) > 0 {
			deepest = i
			break
		}
	}
	return deepest
}

// tableGetLocked searches the table levels for key.
func (db *DB) tableGetLocked(key []byte) (val []byte, deleted, found bool, err error) {
	lk := lookupKey(key, MaxSeq)
	probe := func(m *tableMeta) (bool, error) {
		if icmp(lk, m.last) > 0 || bytes.Compare(key, ikey(m.first).userKey()) < 0 {
			return false, nil
		}
		r, err := db.openTableLocked(m)
		if err != nil {
			return false, err
		}
		it := r.NewIterator()
		it.Seek(lk)
		if it.Err() != nil {
			return false, it.Err()
		}
		if !it.Valid() {
			return false, nil
		}
		k := ikey(it.Key())
		if !bytes.Equal(k.userKey(), key) {
			return false, nil
		}
		deleted = k.kind() == KindDelete
		val = it.Value()
		return true, nil
	}
	// L0: newest first, overlapping ranges.
	for _, m := range db.levels[0] {
		hit, err := probe(m)
		if err != nil {
			return nil, false, false, err
		}
		if hit {
			return val, deleted, true, nil
		}
	}
	// L1+: non-overlapping; at most one candidate per level.
	for level := 1; level < numLevels; level++ {
		for _, m := range db.levels[level] {
			hit, err := probe(m)
			if err != nil {
				return nil, false, false, err
			}
			if hit {
				return val, deleted, true, nil
			}
		}
	}
	return nil, false, false, nil
}

// --- Manifest ---

const manifestName = "MANIFEST"

// saveManifest serializes the level structure.
func (db *DB) saveManifest() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seq %d\ntablenum %d\nlognum %d\n", db.seq, db.tableNum, db.logNum)
	for level, tables := range db.levels {
		for _, m := range tables {
			fmt.Fprintf(&sb, "table %d %s %d %x %x\n", level, m.name, m.size, m.first, m.last)
		}
	}
	return db.opt.Storage.Write(manifestName, []byte(sb.String()))
}

// loadManifest restores the level structure (missing manifest = fresh DB).
func (db *DB) loadManifest() error {
	data, err := db.opt.Storage.Read(manifestName)
	if err != nil {
		return nil // fresh database
	}
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "seq":
			db.seq, _ = strconv.ParseUint(f[1], 10, 64)
		case "tablenum":
			db.tableNum, _ = strconv.Atoi(f[1])
		case "lognum":
			db.logNum, _ = strconv.Atoi(f[1])
		case "table":
			if len(f) != 6 {
				return fmt.Errorf("lsm: bad manifest line %q", line)
			}
			level, _ := strconv.Atoi(f[1])
			size, _ := strconv.Atoi(f[3])
			first, err1 := hexDecode(f[4])
			last, err2 := hexDecode(f[5])
			if level < 0 || level >= numLevels || err1 != nil || err2 != nil {
				return fmt.Errorf("lsm: bad manifest line %q", line)
			}
			db.levels[level] = append(db.levels[level], &tableMeta{
				name: f[2], size: size, first: first, last: last,
			})
		}
	}
	return nil
}

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, err1 := hexNibble(s[2*i])
		lo, err2 := hexNibble(s[2*i+1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad hex")
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexNibble(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	}
	return 0, fmt.Errorf("bad nibble")
}

// replayLogs replays surviving WAL objects into a fresh memtable stack
// (LevelDBSim recovery). Torn tails stop replay at the last intact
// record.
func (db *DB) replayLogs() error {
	names, err := db.opt.Storage.List()
	if err != nil {
		return err
	}
	db.mem = newDRAMMemtable()
	for _, name := range names {
		if !strings.HasPrefix(name, "log-") {
			continue
		}
		data, err := db.opt.Storage.Read(name)
		if err != nil {
			return err
		}
		r := wal.NewReader(bytes.NewReader(data))
		for {
			rec, err := r.Next()
			if err != nil {
				break // EOF or torn tail: stop at last intact record
			}
			b := decodeBatch(bytes.Clone(rec))
			repErr := b.forEach(func(seq uint64, kind Kind, key, value []byte) error {
				db.mem.add(seq, kind, key, value)
				if seq > db.seq {
					db.seq = seq
				}
				return nil
			})
			if repErr != nil {
				break
			}
		}
	}
	return nil
}

// SyncWAL persists the in-memory WAL buffer to storage (called by the
// harness at checkpoints; LevelDB fsync-per-write is modelled by the
// PM/disk latency profile, not by object-store round trips).
func (db *DB) SyncWAL() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.opt.Mode != LevelDBSim {
		return nil
	}
	return db.opt.Storage.Write(fmt.Sprintf("log-%06d", db.logNum), db.walBuf.Bytes())
}
