package lsm

import (
	"bytes"

	"packetstore/internal/sstable"
)

// iterLike is the common shape of memtable and table iterators.
type iterLike interface {
	Valid() bool
	Key() []byte
	Value() []byte
	Next()
}

// mergedIter performs an N-way merge by internal-key order. Internal keys
// are unique across sources (sequence numbers are global), so ties cannot
// occur.
type mergedIter struct {
	iters []iterLike
	cur   int
}

func newMergedIter(iters []iterLike) *mergedIter {
	m := &mergedIter{iters: iters, cur: -1}
	m.pick()
	return m
}

func (m *mergedIter) pick() {
	m.cur = -1
	for i, it := range m.iters {
		if !it.Valid() {
			continue
		}
		if m.cur < 0 || icmp(it.Key(), m.iters[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
}

func (m *mergedIter) valid() bool   { return m.cur >= 0 }
func (m *mergedIter) key() []byte   { return m.iters[m.cur].Key() }
func (m *mergedIter) value() []byte { return m.iters[m.cur].Value() }
func (m *mergedIter) next() {
	m.iters[m.cur].Next()
	m.pick()
}

// newMergedTableIter adapts sstable iterators for compaction.
func newMergedTableIter(iters []*sstable.Iterator) *mergedIter {
	like := make([]iterLike, len(iters))
	for i, it := range iters {
		like[i] = it
	}
	return newMergedIter(like)
}

// KV is one result of a range scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Range returns up to limit live entries with start <= key < end (end nil
// means unbounded) — the efficient range query NoveLSM's persistent skip
// list exists to support.
func (db *DB) Range(start, end []byte, limit int) ([]KV, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if limit <= 0 {
		limit = 1 << 30
	}
	lk := lookupKey(start, MaxSeq)

	var iters []iterLike
	mit := db.mem.iter()
	mit.Seek(lk)
	iters = append(iters, mit)
	for _, imm := range db.imms {
		it := imm.iter()
		it.Seek(lk)
		iters = append(iters, it)
	}
	for level := 0; level < numLevels; level++ {
		for _, m := range db.levels[level] {
			if end != nil && bytes.Compare(ikey(m.first).userKey(), end) >= 0 {
				continue
			}
			if icmp(lk, m.last) > 0 {
				continue
			}
			r, err := db.openTableLocked(m)
			if err != nil {
				return nil, err
			}
			it := r.NewIterator()
			it.Seek(lk)
			iters = append(iters, it)
		}
	}

	merged := newMergedIter(iters)
	var out []KV
	var lastUser []byte
	for merged.valid() && len(out) < limit {
		k := ikey(merged.key())
		uk := k.userKey()
		if end != nil && bytes.Compare(uk, end) >= 0 {
			break
		}
		if lastUser != nil && bytes.Equal(uk, lastUser) {
			merged.next()
			continue // shadowed older version
		}
		lastUser = append(lastUser[:0], uk...)
		if k.kind() != KindDelete {
			val, ok, err := db.decodeValue(uk, merged.value())
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, KV{Key: bytes.Clone(uk), Value: val})
			}
		}
		merged.next()
	}
	return out, nil
}
