package lsm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Storage abstracts where SSTables and logs live: an in-memory object
// store for simulation and tests, or a directory on disk for the CLI
// tools.
type Storage interface {
	// Write stores an object atomically under name.
	Write(name string, data []byte) error
	// Read returns an object's contents.
	Read(name string) ([]byte, error)
	// Remove deletes an object; missing objects are not an error.
	Remove(name string) error
	// List returns all object names, sorted.
	List() ([]string, error)
}

// MemStorage is an in-memory Storage.
type MemStorage struct {
	mu   sync.Mutex
	objs map[string][]byte
}

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{objs: make(map[string][]byte)}
}

// Write implements Storage.
func (s *MemStorage) Write(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[name] = bytes.Clone(data)
	return nil
}

// Read implements Storage.
func (s *MemStorage) Read(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.objs[name]
	if !ok {
		return nil, fmt.Errorf("lsm: object %q not found", name)
	}
	return d, nil
}

// Remove implements Storage.
func (s *MemStorage) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objs, name)
	return nil
}

// List implements Storage.
func (s *MemStorage) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objs))
	for n := range s.objs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// DiskStorage stores objects as files under a directory.
type DiskStorage struct {
	dir string
}

// NewDiskStorage creates (if needed) and opens a directory store.
func NewDiskStorage(dir string) (*DiskStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskStorage{dir: dir}, nil
}

// Write implements Storage (atomic via rename).
func (s *DiskStorage) Write(name string, data []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// Read implements Storage.
func (s *DiskStorage) Read(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, name))
}

// Remove implements Storage.
func (s *DiskStorage) Remove(name string) error {
	err := os.Remove(filepath.Join(s.dir, name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements Storage.
func (s *DiskStorage) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) != ".tmp" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
