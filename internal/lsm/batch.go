package lsm

import (
	"encoding/binary"
	"fmt"
)

// Batch is a LevelDB-format write batch: an 8-byte base sequence, a
// 4-byte record count, then records of (kind, varint key length, key,
// [varint value length, value]). Building one is the "request
// preparation" phase Table 1 measures at 0.70µs: the storage stack's
// translation of a network request into its own write representation.
type Batch struct {
	rep   []byte
	count uint32
}

const batchHeaderLen = 12

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	b := &Batch{rep: make([]byte, batchHeaderLen, 256)}
	return b
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.rep = b.rep[:batchHeaderLen]
	for i := range b.rep {
		b.rep[i] = 0
	}
	b.count = 0
}

// Put appends a key/value record.
func (b *Batch) Put(key, value []byte) {
	b.rep = append(b.rep, byte(KindValue))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.rep = binary.AppendUvarint(b.rep, uint64(len(value)))
	b.rep = append(b.rep, value...)
	b.count++
}

// Delete appends a tombstone record.
func (b *Batch) Delete(key []byte) {
	b.rep = append(b.rep, byte(KindDelete))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.count++
}

// Count returns the number of records.
func (b *Batch) Count() int { return int(b.count) }

// setSeq stamps the base sequence and count into the header.
func (b *Batch) setSeq(seq uint64) {
	binary.LittleEndian.PutUint64(b.rep[0:8], seq)
	binary.LittleEndian.PutUint32(b.rep[8:12], b.count)
}

// repr returns the serialized batch (valid after setSeq).
func (b *Batch) repr() []byte { return b.rep }

// forEach decodes the batch, invoking fn with each record's sequence.
func (b *Batch) forEach(fn func(seq uint64, kind Kind, key, value []byte) error) error {
	if len(b.rep) < batchHeaderLen {
		return fmt.Errorf("lsm: batch header truncated")
	}
	seq := binary.LittleEndian.Uint64(b.rep[0:8])
	count := binary.LittleEndian.Uint32(b.rep[8:12])
	p := b.rep[batchHeaderLen:]
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return fmt.Errorf("lsm: batch record %d truncated", i)
		}
		kind := Kind(p[0])
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < klen {
			return fmt.Errorf("lsm: batch key %d truncated", i)
		}
		key := p[n : n+int(klen)]
		p = p[n+int(klen):]
		var val []byte
		if kind == KindValue {
			vlen, m := binary.Uvarint(p)
			if m <= 0 || uint64(len(p)-m) < vlen {
				return fmt.Errorf("lsm: batch value %d truncated", i)
			}
			val = p[m : m+int(vlen)]
			p = p[m+int(vlen):]
		}
		if err := fn(seq+uint64(i), kind, key, val); err != nil {
			return err
		}
	}
	return nil
}

// decodeBatch wraps raw bytes (a WAL record) as a Batch for replay.
func decodeBatch(rep []byte) *Batch {
	return &Batch{rep: rep}
}
