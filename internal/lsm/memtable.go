package lsm

import (
	"packetstore/internal/pmem"
	"packetstore/internal/pskiplist"
	"packetstore/internal/skiplist"
)

// memIter is the common iterator shape of both memtable kinds.
type memIter interface {
	Valid() bool
	Key() []byte
	Value() []byte
	Next()
	Seek(key []byte)
	SeekToFirst()
}

// memtable is a mutable in-memory (or in-PM) table of internal keys.
type memtable interface {
	// add inserts an entry; false means out of space (PM arena full).
	add(seq uint64, kind Kind, userKey, value []byte) bool
	// get looks up the newest entry for userKey at or below seq.
	// found=false means the memtable has no entry; deleted=true means the
	// newest entry is a tombstone.
	get(userKey []byte, seq uint64) (value []byte, deleted, found bool)
	iter() memIter
	approximateBytes() int
}

// dramMemtable is the LevelDB arena skip list.
type dramMemtable struct {
	sl *skiplist.List
}

func newDRAMMemtable() *dramMemtable {
	return &dramMemtable{sl: skiplist.New(icmp)}
}

func (m *dramMemtable) add(seq uint64, kind Kind, userKey, value []byte) bool {
	m.sl.Insert(makeIKey(userKey, seq, kind), value)
	return true
}

func (m *dramMemtable) get(userKey []byte, seq uint64) ([]byte, bool, bool) {
	it := m.sl.NewIterator()
	it.Seek(lookupKey(userKey, seq))
	return memGetAt(it, userKey)
}

func (m *dramMemtable) iter() memIter { return m.sl.NewIterator() }

func (m *dramMemtable) approximateBytes() int { return m.sl.MemoryUsage() }

// pmMemtable is the NoveLSM persistent skip list.
type pmMemtable struct {
	sl *pskiplist.List
}

// newPMMemtable initializes a fresh persistent memtable in [base,
// base+size) of r.
func newPMMemtable(r *pmem.Region, base, size int) *pmMemtable {
	return &pmMemtable{sl: pskiplist.New(r, base, size, icmp)}
}

// recoverPMMemtable reopens a persistent memtable after a crash.
func recoverPMMemtable(r *pmem.Region, base, size int) (*pmMemtable, error) {
	sl, err := pskiplist.Recover(r, base, size, icmp)
	if err != nil {
		return nil, err
	}
	return &pmMemtable{sl: sl}, nil
}

func (m *pmMemtable) add(seq uint64, kind Kind, userKey, value []byte) bool {
	return m.sl.Insert(makeIKey(userKey, seq, kind), value)
}

func (m *pmMemtable) get(userKey []byte, seq uint64) ([]byte, bool, bool) {
	it := m.sl.NewIterator()
	it.Seek(lookupKey(userKey, seq))
	return memGetAt(it, userKey)
}

func (m *pmMemtable) iter() memIter { return m.sl.NewIterator() }

func (m *pmMemtable) approximateBytes() int { return m.sl.MemoryUsage() }

// memGetAt interprets an iterator positioned by a lookup key.
func memGetAt(it memIter, userKey []byte) ([]byte, bool, bool) {
	if !it.Valid() {
		return nil, false, false
	}
	k := ikey(it.Key())
	if !k.valid() || string(k.userKey()) != string(userKey) {
		return nil, false, false
	}
	if k.kind() == KindDelete {
		return nil, true, true
	}
	return it.Value(), false, true
}
