package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

func openNoveLSM(t *testing.T, r *pmem.Region, opts ...func(*Options)) *DB {
	t.Helper()
	opt := Options{
		Mode: NoveLSMSim, PM: r, PMBase: 0, PMSize: r.Size(),
		ArenaSize: 1 << 20, Checksum: true, VerifyOnGet: true,
	}
	for _, f := range opts {
		f(&opt)
	}
	db, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func openLevelDB(t *testing.T, st Storage, opts ...func(*Options)) *DB {
	t.Helper()
	opt := Options{Mode: LevelDBSim, Storage: st, MemtableBytes: 64 << 10, Checksum: true, VerifyOnGet: true}
	for _, f := range opts {
		f(&opt)
	}
	db, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testBasicOps(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get(alpha)=%q,%v,%v", v, ok, err)
	}
	// Overwrite: newest wins.
	db.Put([]byte("alpha"), []byte("1v2"))
	v, ok, _ = db.Get([]byte("alpha"))
	if !ok || string(v) != "1v2" {
		t.Fatalf("overwrite: %q", v)
	}
	// Delete.
	db.Delete([]byte("beta"))
	if _, ok, _ := db.Get([]byte("beta")); ok {
		t.Fatal("deleted key visible")
	}
	// Absent.
	if _, ok, _ := db.Get([]byte("nope")); ok {
		t.Fatal("absent key found")
	}
}

func TestBasicOpsNoveLSM(t *testing.T) {
	r := pmem.New(8<<20, calib.Off())
	db := openNoveLSM(t, r)
	defer db.Close()
	testBasicOps(t, db)
}

func TestBasicOpsLevelDB(t *testing.T) {
	db := openLevelDB(t, NewMemStorage())
	defer db.Close()
	testBasicOps(t, db)
}

func TestManyKeysWithRotation(t *testing.T) {
	r := pmem.New(32<<20, calib.Off())
	db := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 256 << 10; o.DisableCompaction = true })
	defer db.Close()
	val := make([]byte, 256)
	n := 2000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if db.Immutables() == 0 {
		t.Fatal("no rotation happened")
	}
	for i := 0; i < n; i++ {
		_, ok, err := db.Get([]byte(fmt.Sprintf("key%06d", i)))
		if err != nil || !ok {
			t.Fatalf("lost key%06d after rotation: %v", i, err)
		}
	}
}

func TestCompactionKeepsData(t *testing.T) {
	st := NewMemStorage()
	db := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 16 << 10 })
	defer db.Close()
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%05d", rng.Intn(800))
		v := fmt.Sprintf("val-%d", i)
		if rng.Intn(10) == 0 {
			db.Delete([]byte(k))
			delete(ref, k)
		} else {
			db.Put([]byte(k), []byte(v))
			ref[k] = v
		}
	}
	counts := db.TableCount()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no tables produced despite small memtable")
	}
	for k, v := range ref {
		got, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s)=%q,%v,%v want %q", k, got, ok, err, v)
		}
	}
	// Deleted keys stay deleted through compaction.
	for k := range map[string]bool{"key00000": true} {
		if _, inRef := ref[k]; !inRef {
			if _, ok, _ := db.Get([]byte(k)); ok {
				t.Fatalf("tombstone for %s lost in compaction", k)
			}
		}
	}
}

func TestL0TriggerCompacts(t *testing.T) {
	st := NewMemStorage()
	db := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 8 << 10 })
	defer db.Close()
	val := make([]byte, 512)
	for i := 0; i < 400; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), val)
	}
	counts := db.TableCount()
	if counts[0] >= l0CompactionTrigger {
		t.Fatalf("L0 never compacted: %v", counts)
	}
	if counts[1] == 0 {
		t.Fatalf("nothing reached L1: %v", counts)
	}
}

func TestRange(t *testing.T) {
	r := pmem.New(16<<20, calib.Off())
	db := openNoveLSM(t, r)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k050"))
	db.Put([]byte("k010"), []byte("updated"))

	kvs, err := db.Range([]byte("k010"), []byte("k060"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 49 { // k010..k059 minus deleted k050
		t.Fatalf("got %d results", len(kvs))
	}
	if string(kvs[0].Key) != "k010" || string(kvs[0].Value) != "updated" {
		t.Fatalf("first = %s:%s", kvs[0].Key, kvs[0].Value)
	}
	for _, kv := range kvs {
		if string(kv.Key) == "k050" {
			t.Fatal("tombstoned key in range result")
		}
	}
	// Limit.
	kvs, _ = db.Range([]byte("k000"), nil, 5)
	if len(kvs) != 5 {
		t.Fatalf("limit ignored: %d", len(kvs))
	}
}

func TestRangeAcrossTablesAndMemtables(t *testing.T) {
	st := NewMemStorage()
	db := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 8 << 10 })
	defer db.Close()
	val := make([]byte, 256)
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), val)
	}
	kvs, err := db.Range([]byte("k000100"), []byte("k000200"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 100 {
		t.Fatalf("range across tables: %d results", len(kvs))
	}
	for i, kv := range kvs {
		if string(kv.Key) != fmt.Sprintf("k%06d", 100+i) {
			t.Fatalf("gap at %d: %s", i, kv.Key)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	r := pmem.New(8<<20, calib.Off())
	db := openNoveLSM(t, r)
	defer db.Close()
	key := []byte("target")
	db.Put(key, []byte("precious data"))
	// Corrupt the stored value in PM (silent data corruption).
	img := r.Slice(0, r.Size())
	needle := []byte("precious")
	idx := bytes.Index(img, needle)
	if idx < 0 {
		t.Fatal("stored value not found in region")
	}
	img[idx] ^= 0x01
	if _, _, err := db.Get(key); err == nil {
		t.Fatal("silent corruption not detected by checksum")
	}
}

func TestNoveLSMCrashRecovery(t *testing.T) {
	r := pmem.New(16<<20, calib.Off())
	db := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 256 << 10; o.DisableCompaction = true })
	ref := map[string]string{}
	for i := 0; i < 1500; i++ {
		k, v := fmt.Sprintf("key%06d", i), fmt.Sprintf("value-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	seqBefore := db.Seq()

	r.Crash(7)

	db2 := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 256 << 10; o.DisableCompaction = true })
	defer db2.Close()
	if db2.Seq() != seqBefore {
		t.Fatalf("seq after recovery %d want %d", db2.Seq(), seqBefore)
	}
	for k, v := range ref {
		got, ok, err := db2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("after crash Get(%s)=%q,%v,%v", k, got, ok, err)
		}
	}
	// Still writable, with monotonically growing seqs.
	if err := db2.Put([]byte("post"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if db2.Seq() != seqBefore+1 {
		t.Fatal("sequence did not resume")
	}
}

func TestNoveLSMRepeatedCrashes(t *testing.T) {
	r := pmem.New(16<<20, calib.Off())
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 4; round++ {
		db := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 512 << 10; o.DisableCompaction = true })
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("r%d-%04d", round, i)
			v := fmt.Sprintf("v%d-%d", round, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		}
		r.Crash(rng.Int63())
		db2 := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 512 << 10; o.DisableCompaction = true })
		for k, v := range ref {
			got, ok, err := db2.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("round %d: lost %s", round, k)
			}
		}
		db2.Close()
	}
}

func TestLevelDBWALRecovery(t *testing.T) {
	st := NewMemStorage()
	db := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 1 << 20 })
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close; reopen from the same storage.
	db2 := openLevelDB(t, st)
	defer db2.Close()
	for i := 0; i < 100; i++ {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("WAL replay lost k%03d: %q %v %v", i, v, ok, err)
		}
	}
}

func TestManifestReopen(t *testing.T) {
	st := NewMemStorage()
	db := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 8 << 10 })
	val := make([]byte, 512)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), val)
	}
	db.SyncWAL()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 8 << 10 })
	defer db2.Close()
	for i := 0; i < 200; i++ {
		if _, ok, err := db2.Get([]byte(fmt.Sprintf("key%05d", i))); err != nil || !ok {
			t.Fatalf("lost key%05d across reopen: %v", i, err)
		}
	}
}

func TestDisableCompactionAccumulatesImmutables(t *testing.T) {
	r := pmem.New(8<<20, calib.Off())
	db := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 128 << 10; o.DisableCompaction = true })
	defer db.Close()
	val := make([]byte, 512)
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), val)
	}
	if db.Immutables() < 1 {
		t.Fatal("immutables not accumulating with compaction off")
	}
	counts := db.TableCount()
	for _, c := range counts {
		if c != 0 {
			t.Fatal("tables produced with compaction disabled")
		}
	}
}

func TestPMExhaustion(t *testing.T) {
	r := pmem.New(256<<10, calib.Off())
	db := openNoveLSM(t, r, func(o *Options) {
		o.ArenaSize = 128 << 10
		o.PMSize = 256 << 10
		o.DisableCompaction = true
	})
	defer db.Close()
	val := make([]byte, 1024)
	var err error
	for i := 0; i < 1000; i++ {
		if err = db.Put([]byte(fmt.Sprintf("key%05d", i)), val); err != nil {
			break
		}
	}
	if err != ErrPMFull {
		t.Fatalf("want ErrPMFull, got %v", err)
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	r := pmem.New(8<<20, calib.Off())
	db := openNoveLSM(t, r)
	defer db.Close()
	val := make([]byte, 1024)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%05d", i)), val)
	}
	bd := db.Breakdown()
	if bd.Ops != 100 || bd.Prep == 0 || bd.Checksum == 0 {
		t.Fatalf("breakdown %+v", bd)
	}
	if bd.Insert.Count != 100 || bd.Insert.Copy == 0 || bd.Insert.Alloc == 0 {
		t.Fatalf("insert stats %+v", bd.Insert)
	}
	db.ResetBreakdown()
	if db.Breakdown().Ops != 0 {
		t.Fatal("reset failed")
	}
}

func TestClosedDBErrors(t *testing.T) {
	r := pmem.New(8<<20, calib.Off())
	db := openNoveLSM(t, r)
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := db.Range(nil, nil, 0); err != ErrClosed {
		t.Fatalf("Range after close: %v", err)
	}
	if err := db.Close(); err != ErrClosed {
		t.Fatalf("double Close: %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Put([]byte("k3"), make([]byte, 300))
	b.setSeq(42)
	if b.Count() != 3 {
		t.Fatal("count")
	}
	var got []string
	err := b.forEach(func(seq uint64, kind Kind, key, value []byte) error {
		got = append(got, fmt.Sprintf("%d-%d-%s-%d", seq, kind, key, len(value)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"42-1-k1-2", "43-0-k2-0", "44-1-k3-300"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %s want %s", i, got[i], want[i])
		}
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("reset")
	}
}

func TestBatchTruncatedRejected(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("key"), []byte("value"))
	b.setSeq(1)
	trunc := decodeBatch(b.repr()[:len(b.repr())-3])
	if err := trunc.forEach(func(uint64, Kind, []byte, []byte) error { return nil }); err == nil {
		t.Fatal("truncated batch accepted")
	}
	if err := decodeBatch([]byte{1, 2}).forEach(func(uint64, Kind, []byte, []byte) error { return nil }); err == nil {
		t.Fatal("tiny batch accepted")
	}
}

func TestIKeyOrdering(t *testing.T) {
	a1 := makeIKey([]byte("a"), 1, KindValue)
	a2 := makeIKey([]byte("a"), 2, KindValue)
	b1 := makeIKey([]byte("b"), 1, KindValue)
	if icmp(a2, a1) >= 0 {
		t.Fatal("higher seq should sort first")
	}
	if icmp(a1, b1) >= 0 {
		t.Fatal("user key order broken")
	}
	if ikey(a2).seq() != 2 || ikey(a2).kind() != KindValue {
		t.Fatal("trailer decode")
	}
	d := makeIKey([]byte("a"), 3, KindDelete)
	if ikey(d).kind() != KindDelete {
		t.Fatal("kind decode")
	}
	if string(ikey(d).userKey()) != "a" {
		t.Fatal("user key extract")
	}
}

func TestDiskStorage(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDiskStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write("obj1", []byte("data1")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read("obj1")
	if err != nil || string(got) != "data1" {
		t.Fatalf("read: %q %v", got, err)
	}
	names, _ := st.List()
	if len(names) != 1 || names[0] != "obj1" {
		t.Fatalf("list: %v", names)
	}
	if err := st.Remove("obj1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("obj1"); err != nil {
		t.Fatal("remove missing should be nil")
	}
	if _, err := st.Read("obj1"); err == nil {
		t.Fatal("read removed object")
	}
	// A DB on disk storage works end to end.
	db := openLevelDB(t, st, func(o *Options) { o.MemtableBytes = 4 << 10 })
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 256))
	}
	if _, ok, err := db.Get([]byte("k0050")); err != nil || !ok {
		t.Fatalf("disk-backed get: %v", err)
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	r := pmem.New(64<<20, calib.Off())
	db := openNoveLSM(t, r, func(o *Options) { o.ArenaSize = 512 << 10 })
	defer db.Close()
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(500))
		switch rng.Intn(4) {
		case 0:
			db.Delete([]byte(k))
			delete(ref, k)
		default:
			v := fmt.Sprintf("val-%d", i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		}
		if i%500 == 0 {
			for k, v := range ref {
				got, ok, err := db.Get([]byte(k))
				if err != nil || !ok || string(got) != v {
					t.Fatalf("iter %d: Get(%s)=%q,%v,%v want %q", i, k, got, ok, err, v)
				}
			}
		}
	}
}

func BenchmarkPutNoveLSM1K(b *testing.B) {
	r := pmem.New(1<<30, calib.Off())
	db, err := Open(Options{Mode: NoveLSMSim, PM: r, PMSize: r.Size(),
		ArenaSize: 32 << 20, Checksum: true, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutNoveLSM1KPaperModel(b *testing.B) {
	r := pmem.New(1<<30, calib.Paper())
	db, err := Open(Options{Mode: NoveLSMSim, PM: r, PMSize: r.Size(),
		ArenaSize: 32 << 20, Checksum: true, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetNoveLSM(b *testing.B) {
	r := pmem.New(1<<28, calib.Off())
	db, err := Open(Options{Mode: NoveLSMSim, PM: r, PMSize: r.Size(),
		ArenaSize: 32 << 20, Checksum: true, DisableCompaction: true})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	for i := 0; i < 50000; i++ {
		db.Put([]byte(fmt.Sprintf("key%08d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("key%08d", (i*7919)%50000)))
	}
}
