// Package lsm implements the paper's baseline storage stack: a
// LevelDB-style log-structured merge tree with two configurations.
//
//   - LevelDBSim: DRAM memtable (arena skip list) + write-ahead log +
//     SSTables with leveled compaction — LevelDB as shipped.
//   - NoveLSMSim: the memtable is a persistent skip list in a PM region
//     and the WAL is dropped (persistence comes from the PM memtable),
//     matching the NoveLSM configuration measured in §3 of the paper
//     (compaction disabled during the experiment).
//
// The data-management phases the paper's Table 1 itemizes — request
// preparation (write-batch encoding), checksum calculation (CRC32C over
// key+value), data copy, and buffer allocation + index insertion — are
// real code paths here, individually instrumented (Breakdown) and
// individually disablable, reproducing the paper's measurement
// methodology.
package lsm

import (
	"bytes"
	"encoding/binary"
)

// Kind tags an internal key as a value or a tombstone.
type Kind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
	// KindValue marks a live value.
	KindValue Kind = 1
)

// MaxSeq is the largest sequence number; lookups use it to position at
// the newest entry for a user key.
const MaxSeq = uint64(1)<<56 - 1

// ikey is an internal key: user key followed by 8 bytes of
// (seq << 8 | kind), ordered user-key ascending then seq descending —
// so the newest entry for a user key sorts first.
type ikey []byte

// makeIKey builds an internal key.
func makeIKey(userKey []byte, seq uint64, kind Kind) ikey {
	k := make([]byte, len(userKey)+8)
	copy(k, userKey)
	binary.BigEndian.PutUint64(k[len(userKey):], seq<<8|uint64(kind))
	return k
}

// appendIKeyTrailer appends the 8-byte trailer to dst.
func appendIKeyTrailer(dst []byte, seq uint64, kind Kind) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], seq<<8|uint64(kind))
	return append(dst, t[:]...)
}

// userKey extracts the user key portion.
func (k ikey) userKey() []byte { return k[:len(k)-8] }

// seq extracts the sequence number.
func (k ikey) seq() uint64 { return binary.BigEndian.Uint64(k[len(k)-8:]) >> 8 }

// kind extracts the kind tag.
func (k ikey) kind() Kind { return Kind(k[len(k)-1]) }

// valid reports whether the key has room for a trailer.
func (k ikey) valid() bool { return len(k) >= 8 }

// icmp orders internal keys: user key ascending, then sequence number
// descending (trailer bytes compare inverted).
func icmp(a, b []byte) int {
	ua, ub := ikey(a).userKey(), ikey(b).userKey()
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	// Larger trailer (higher seq) sorts first.
	return -bytes.Compare(a[len(a)-8:], b[len(b)-8:])
}

// lookupKey returns the internal key that positions at the newest entry
// for userKey at or below seq.
func lookupKey(userKey []byte, seq uint64) ikey {
	return makeIKey(userKey, seq, KindValue)
}
