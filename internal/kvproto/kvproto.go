// Package kvproto defines the storage request protocol the paper's
// workload speaks: key-value operations carried over HTTP/1.1 on
// persistent TCP connections.
//
//	PUT    /k/<key>                       body = value -> 200
//	GET    /k/<key>                       -> 200 + value | 404
//	DELETE /k/<key>                       -> 204 | 404
//	GET    /range?start=<s>&end=<e>&limit=<n> -> 200 + encoded records
//
// Range results use a length-prefixed binary body: repeated
// (u32 key length, key bytes, u32 value length, value bytes), little
// endian.
//
// Protocol versioning: any request MAY carry an X-Budget-Us header — the
// client's remaining latency budget in microseconds. Servers that
// understand it drop requests whose budget has lapsed before execution
// (503 + Retry-After-Ms); servers that don't simply ignore the header,
// and clients that don't send it get the original always-execute
// behavior, so old and new endpoints interoperate in both directions.
package kvproto

import (
	"encoding/binary"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Op identifies a request's operation.
type Op int

// Operations.
const (
	OpInvalid Op = iota
	OpPut
	OpGet
	OpDelete
	OpRange
)

// Request is a decoded KV request (body handled separately).
type Request struct {
	Op    Op
	Key   []byte
	Start []byte // range
	End   []byte // range
	Limit int    // range
	// Budget is the client's remaining latency budget (from the optional
	// X-Budget-Us header), or 0 when the client didn't send one. A server
	// may drop the request instead of executing it once Budget has
	// elapsed since arrival.
	Budget time.Duration
}

// KeyPath builds the request path for a key.
func KeyPath(key []byte) string { return "/k/" + url.PathEscape(string(key)) }

// RangePath builds a range query path.
func RangePath(start, end []byte, limit int) string {
	q := url.Values{}
	q.Set("start", string(start))
	if end != nil {
		q.Set("end", string(end))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	return "/range?" + q.Encode()
}

// Parse decodes method+path into a Request.
func Parse(method, path string) (Request, error) {
	switch {
	case strings.HasPrefix(path, "/k/"):
		key, err := url.PathUnescape(path[3:])
		if err != nil || key == "" {
			return Request{}, fmt.Errorf("kvproto: bad key in %q", path)
		}
		switch method {
		case "PUT", "POST":
			return Request{Op: OpPut, Key: []byte(key)}, nil
		case "GET":
			return Request{Op: OpGet, Key: []byte(key)}, nil
		case "DELETE":
			return Request{Op: OpDelete, Key: []byte(key)}, nil
		}
		return Request{}, fmt.Errorf("kvproto: method %s not allowed on %q", method, path)
	case strings.HasPrefix(path, "/range"):
		if method != "GET" {
			return Request{}, fmt.Errorf("kvproto: method %s not allowed on range", method)
		}
		req := Request{Op: OpRange}
		if i := strings.IndexByte(path, '?'); i >= 0 {
			q, err := url.ParseQuery(path[i+1:])
			if err != nil {
				return Request{}, fmt.Errorf("kvproto: bad range query: %v", err)
			}
			req.Start = []byte(q.Get("start"))
			if e := q.Get("end"); e != "" {
				req.End = []byte(e)
			}
			if l := q.Get("limit"); l != "" {
				n, err := strconv.Atoi(l)
				if err != nil || n < 0 {
					return Request{}, fmt.Errorf("kvproto: bad limit %q", l)
				}
				req.Limit = n
			}
		}
		return req, nil
	}
	return Request{}, fmt.Errorf("kvproto: unknown path %q", path)
}

// KV is one record in a range result.
type KV struct {
	Key   []byte
	Value []byte
}

// AppendRangeBody serializes records into dst.
func AppendRangeBody(dst []byte, kvs []KV) []byte {
	var tmp [4]byte
	for _, kv := range kvs {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(kv.Key)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, kv.Key...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(kv.Value)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, kv.Value...)
	}
	return dst
}

// DecodeRangeBody parses a range result body.
func DecodeRangeBody(b []byte) ([]KV, error) {
	var out []KV
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("kvproto: truncated range body")
		}
		kl := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < kl+4 {
			return nil, fmt.Errorf("kvproto: truncated range key")
		}
		key := b[:kl]
		b = b[kl:]
		vl := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < vl {
			return nil, fmt.Errorf("kvproto: truncated range value")
		}
		out = append(out, KV{Key: append([]byte(nil), key...), Value: append([]byte(nil), b[:vl]...)})
		b = b[vl:]
	}
	return out, nil
}
