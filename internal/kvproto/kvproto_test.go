package kvproto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseKeyOps(t *testing.T) {
	cases := []struct {
		method, path string
		op           Op
		key          string
		ok           bool
	}{
		{"PUT", "/k/mykey", OpPut, "mykey", true},
		{"POST", "/k/mykey", OpPut, "mykey", true},
		{"GET", "/k/mykey", OpGet, "mykey", true},
		{"DELETE", "/k/mykey", OpDelete, "mykey", true},
		{"GET", "/k/with%2Fslash", OpGet, "with/slash", true},
		{"PATCH", "/k/mykey", OpInvalid, "", false},
		{"GET", "/k/", OpInvalid, "", false},
		{"GET", "/unknown", OpInvalid, "", false},
		{"GET", "/k/bad%zz", OpInvalid, "", false},
	}
	for _, c := range cases {
		req, err := Parse(c.method, c.path)
		if c.ok != (err == nil) {
			t.Errorf("%s %s: err=%v want ok=%v", c.method, c.path, err, c.ok)
			continue
		}
		if c.ok && (req.Op != c.op || string(req.Key) != c.key) {
			t.Errorf("%s %s: got %v/%q", c.method, c.path, req.Op, req.Key)
		}
	}
}

func TestParseRange(t *testing.T) {
	req, err := Parse("GET", RangePath([]byte("aaa"), []byte("zzz"), 10))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpRange || string(req.Start) != "aaa" || string(req.End) != "zzz" || req.Limit != 10 {
		t.Fatalf("req %+v", req)
	}
	// Unbounded end, no limit.
	req, err = Parse("GET", RangePath([]byte("x"), nil, 0))
	if err != nil || req.End != nil || req.Limit != 0 {
		t.Fatalf("%+v %v", req, err)
	}
	// Bad method / bad limit.
	if _, err := Parse("PUT", "/range?start=a"); err == nil {
		t.Fatal("PUT range accepted")
	}
	if _, err := Parse("GET", "/range?limit=abc"); err == nil {
		t.Fatal("bad limit accepted")
	}
	if _, err := Parse("GET", "/range?%zz=1"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestKeyPathRoundTrip(t *testing.T) {
	f := func(key []byte) bool {
		if len(key) == 0 {
			return true
		}
		req, err := Parse("GET", KeyPath(key))
		return err == nil && bytes.Equal(req.Key, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBodyRoundTrip(t *testing.T) {
	f := func(raw map[string][]byte) bool {
		var kvs []KV
		for k, v := range raw {
			kvs = append(kvs, KV{Key: []byte(k), Value: v})
		}
		got, err := DecodeRangeBody(AppendRangeBody(nil, kvs))
		if err != nil || len(got) != len(kvs) {
			return false
		}
		seen := map[string]string{}
		for _, kv := range got {
			seen[string(kv.Key)] = string(kv.Value)
		}
		for _, kv := range kvs {
			if seen[string(kv.Key)] != string(kv.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRangeBodyTruncation(t *testing.T) {
	body := AppendRangeBody(nil, []KV{{Key: []byte("key"), Value: []byte("value")}})
	for cut := 1; cut < len(body); cut++ {
		if _, err := DecodeRangeBody(body[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
