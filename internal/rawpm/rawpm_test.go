package rawpm

import (
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

func TestPutPersistsAndWraps(t *testing.T) {
	r := pmem.New(4096, calib.Off())
	s := New(r, 0, 4096)
	val := make([]byte, 1000)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < 10; i++ { // 10KB through a 4KB ring: wraps
		if err := s.Put(val); err != nil {
			t.Fatal(err)
		}
	}
	if s.Puts() != 10 {
		t.Fatalf("Puts=%d", s.Puts())
	}
	// The most recent value is persisted (flushed + fenced).
	if r.DirtyLines() != 0 || r.PendingLines() != 0 {
		t.Fatalf("unflushed state left: dirty=%d pending=%d", r.DirtyLines(), r.PendingLines())
	}
}

func TestPutTooLarge(t *testing.T) {
	r := pmem.New(4096, calib.Off())
	s := New(r, 0, 1024)
	if err := s.Put(make([]byte, 2048)); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}
