// Package rawpm is the paper's "Net. + persist." configuration (Figure
// 2): a server that copies each request's value into a persistent-memory
// region and flushes it — persistence without any data management (no
// index, no checksums, no allocator bookkeeping). It bounds from below
// what a networked PM store could cost, which is exactly how the paper
// uses it.
package rawpm

import (
	"errors"
	"sync"

	"packetstore/internal/pmem"
)

// Store appends values into a circular PM log.
type Store struct {
	mu   sync.Mutex
	r    *pmem.Region
	base int
	size int
	off  int
	puts uint64
}

// ErrTooLarge reports a value bigger than the whole region.
var ErrTooLarge = errors.New("rawpm: value exceeds region")

// New creates a raw PM writer over [base, base+size) of r.
func New(r *pmem.Region, base, size int) *Store {
	return &Store{r: r, base: base, size: size}
}

// Put copies value into the region and persists it. The region is a ring:
// old data is overwritten once the region wraps (the Figure 2 workload is
// write-only and unindexed, so nothing references old data).
func (s *Store) Put(value []byte) error {
	if len(value) > s.size {
		return ErrTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.off+len(value) > s.size {
		s.off = 0
	}
	dst := s.base + s.off
	s.r.Write(dst, value)
	s.r.Persist(dst, len(value))
	s.off += len(value)
	s.puts++
	return nil
}

// Puts reports how many values were persisted.
func (s *Store) Puts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts
}
