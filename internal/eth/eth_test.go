package eth

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, typ uint16) bool {
		h := Header{Dst: Addr(dst), Src: Addr(src), Type: typ}
		b := make([]byte, HeaderLen)
		h.Encode(b)
		got, err := Decode(b)
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, 13)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{0x02, 0x50, 0x4d, 0, 0, 0x2a}
	if a.String() != "02:50:4d:00:00:2a" {
		t.Fatalf("got %s", a)
	}
}

func TestHostAddrUnique(t *testing.T) {
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := HostAddr(i)
		if seen[a] {
			t.Fatalf("duplicate MAC for host %d", i)
		}
		seen[a] = true
		if a[0]&0x01 != 0 {
			t.Fatalf("host MAC %s is multicast", a)
		}
		if a == Broadcast {
			t.Fatal("host MAC equals broadcast")
		}
	}
}
