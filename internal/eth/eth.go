// Package eth implements Ethernet II framing.
package eth

import (
	"encoding/binary"
	"fmt"
)

// HeaderLen is the Ethernet II header length (no VLAN tag support).
const HeaderLen = 14

// EtherType values used by the stack.
const (
	TypeIPv4 = 0x0800
	TypeARP  = 0x0806
)

// Addr is a MAC address.
type Addr [6]byte

// Broadcast is the all-ones MAC address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in colon-hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// HostAddr derives a stable locally-administered unicast MAC for host id n.
func HostAddr(n int) Addr {
	return Addr{0x02, 0x50, 0x4d, byte(n >> 16), byte(n >> 8), byte(n)}
}

// Header is a decoded Ethernet header.
type Header struct {
	Dst  Addr
	Src  Addr
	Type uint16
}

// Encode writes the header into b, which must be at least HeaderLen bytes.
func (h Header) Encode(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.Type)
}

// Decode parses an Ethernet header from b.
func Decode(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("eth: frame too short (%d bytes)", len(b))
	}
	var h Header
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}
