// Command pktbench reproduces the paper's evaluation: every table and
// figure, plus the projection and agenda experiments (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	pktbench -experiment table1|figure2|table2|ablation|figure3|recovery|metasize|scaling|torture|batch|heal|steal|erase|readmix|surge|numa|all \
//	         [-profile paper|fast|off] [-requests N] [-duration D] [-conns 1,25,50,75,100] \
//	         [-shards 1,2,4,8] [-batches 1,4,16,64] [-seeds N] [-json FILE]
//
// The torture experiment sweeps the fault-injection harness (crash,
// corruption, shard-loss and network-fault modes) over -seeds seeds and
// writes BENCH_torture.json; any failing run names its seed and exits
// non-zero. The batch experiment sweeps the group-persist pipeline
// (MaxBatch x connections) and writes BENCH_batch.json. The heal
// experiment sweeps the self-healing torture mode (shard loss and
// latent bit flips under live traffic, supervised by the Healer) over
// -seeds seeds, measures non-victim throughput during continuous
// destroy-rebuild churn, and writes BENCH_heal.json. The steal
// experiment runs a connection-placement-skewed workload with the
// work-stealing scheduler off and on (plus a uniform sanity point) and
// writes BENCH_steal.json. The erase experiment sweeps the cross-shard
// parity torture mode (whole data areas destroyed and healed by
// reconstruction) over -seeds seeds, measures the parity write overhead
// and warm/cold/reconstruct rebuild times, and writes BENCH_erase.json.
// The readmix experiment sweeps GET-heavy mixes (50/90/99% reads x
// connection counts) with the lock-free read fast path forced off and
// on, and writes BENCH_readmix.json. The numa experiment sweeps socket
// placements (flat, aligned, interleaved, anti-aligned) of PM
// partitions vs queues/loops on a modeled 2-socket machine and writes
// BENCH_numa.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"packetstore/internal/bench"
	"packetstore/internal/calib"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|figure2|table2|ablation|figure3|recovery|metasize|scaling|torture|batch|heal|steal|erase|readmix|surge|numa|all")
		seeds      = flag.Int("seeds", 256, "torture runs for the crash mode (other modes scale down)")
		profile    = flag.String("profile", "paper", "latency profile: paper|fast|off")
		requests   = flag.Int("requests", 4000, "requests per RTT measurement")
		duration   = flag.Duration("duration", time.Second, "measurement window per throughput point")
		connsFlag  = flag.String("conns", "1,25,50,75,100", "connection counts for figure sweeps")
		shardsFlag = flag.String("shards", "1,2,4,8", "shard counts for the scaling sweep")
		batchFlag  = flag.String("batches", "1,4,16,64", "MaxBatch values for the group-commit sweep")
		jsonPath   = flag.String("json", "", "also write the scaling result as JSON to FILE")
	)
	flag.Parse()

	prof, ok := calib.ByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	parseInts := func(flagName, s string) []int {
		var out []int
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -%s entry %q\n", flagName, f)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	conns := parseInts("conns", *connsFlag)
	shards := parseInts("shards", *shardsFlag)
	batches := parseInts("batches", *batchFlag)

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s (profile %s) ===\n", name, prof.Name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("table1") {
		run("E1 table1", func() error {
			res, err := bench.RunTable1(prof, *requests)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("figure2") {
		run("E2 figure2", func() error {
			res, err := bench.RunFigure2(prof, conns, *duration, false)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("table2") {
		run("E3 table2", func() error {
			res, err := bench.RunTable2(prof, *requests)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("ablation") {
		run("E4 ablation", func() error {
			res, err := bench.RunAblation(prof, *requests)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("figure3") {
		run("E5 figure3", func() error {
			res, err := bench.RunFigure2(prof, conns, *duration, true)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("recovery") {
		run("E6 recovery", func() error {
			res, err := bench.RunRecovery(prof, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("metasize") {
		run("E7 metasize", func() error {
			res, err := bench.RunMetaSize(prof, *requests, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("scaling") {
		run("E8 scaling", func() error {
			// The scaling sweep defaults to the issue's grid: shards
			// 1,2,4,8 x 25,100 connections.
			sc := conns
			if *connsFlag == "1,25,50,75,100" {
				sc = []int{25, 100}
			}
			res, err := bench.RunScaling(prof, shards, sc, *duration)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			if *jsonPath != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			return nil
		})
	}
	if want("batch") {
		run("E10 batch", func() error {
			// The batch sweep defaults to the issue's grid: MaxBatch
			// 1,4,16,64 x 1,16,64,100 connections.
			bc := conns
			if *connsFlag == "1,25,50,75,100" {
				bc = []int{1, 16, 64, 100}
			}
			res, err := bench.RunBatch(prof, batches, bc, *duration)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_batch.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			return nil
		})
	}
	if want("steal") {
		run("E12 steal", func() error {
			// The steal experiment runs one fixed deployment shape: the
			// largest shard count from -shards, 100 connections (or the
			// single -conns value if overridden).
			ns := shards[len(shards)-1]
			nc := 100
			if *connsFlag != "1,25,50,75,100" && len(conns) == 1 {
				nc = conns[0]
			}
			res, err := bench.RunSteal(prof, ns, nc, *duration)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_steal.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			return nil
		})
	}
	if want("readmix") {
		run("E14 readmix", func() error {
			// The read-mix sweep defaults to the issue's grid: 50/90/99%
			// reads x 16,100 connections on the largest -shards entry.
			ns := shards[len(shards)-1]
			rc := []int{16, 100}
			if *connsFlag != "1,25,50,75,100" {
				rc = conns
			}
			res, err := bench.RunReadMix(prof, ns, rc, *duration)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_readmix.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			return nil
		})
	}
	if want("numa") {
		run("E16 numa", func() error {
			// The locality sweep runs one fixed deployment shape on a
			// modeled 2-socket machine: the largest -shards entry, capped
			// at 4 — two shards per socket give the full locality
			// contrast, and more loops than cores just adds scheduler
			// noise that blurs the p50 comparison.
			ns := shards[len(shards)-1]
			if ns > 4 {
				ns = 4
			}
			res, err := bench.RunNUMA(prof, ns, 2, *duration, 0)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_numa.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			return nil
		})
	}
	if want("surge") {
		run("E15 surge", func() error {
			// The surge sweep runs one fixed deployment shape (2 shards,
			// 96 connections) at offered loads of 0.5x-3x measured
			// capacity, overload control off and on, plus the breaker
			// containment episode. Conns/shards honor single-value
			// overrides.
			ns := 2
			if *shardsFlag != "1,2,4,8" && len(shards) == 1 {
				ns = shards[0]
			}
			nc := 96
			if *connsFlag != "1,25,50,75,100" && len(conns) == 1 {
				nc = conns[0]
			}
			res, err := bench.RunSurge(prof, ns, nc, *duration, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_surge.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			return nil
		})
	}
	if want("torture") {
		run("E9 torture", func() error {
			res, err := bench.RunTorture(*seeds, 1000)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_torture.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			if res.Failed() {
				return fmt.Errorf("torture sweep had failing runs (seeds above)")
			}
			return nil
		})
	}
	if want("heal") {
		run("E11 heal", func() error {
			res, err := bench.RunHeal(prof, *seeds, 2000, *duration)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_heal.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			if res.Failed() {
				return fmt.Errorf("heal sweep had failing runs (seeds above)")
			}
			return nil
		})
	}
	if want("erase") {
		run("E13 erase", func() error {
			res, err := bench.RunErase(prof, *seeds, 3000, *duration)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			out := *jsonPath
			if out == "" || *experiment == "all" {
				out = "BENCH_erase.json"
			}
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
			if res.Failed() {
				return fmt.Errorf("erase sweep had failing runs (seeds above)")
			}
			return nil
		})
	}
}
