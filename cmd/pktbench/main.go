// Command pktbench reproduces the paper's evaluation: every table and
// figure, plus the projection and agenda experiments (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	pktbench -experiment table1|figure2|table2|ablation|figure3|recovery|metasize|all \
//	         [-profile paper|fast|off] [-requests N] [-duration D] [-conns 1,25,50,75,100]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"packetstore/internal/bench"
	"packetstore/internal/calib"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|figure2|table2|ablation|figure3|recovery|metasize|all")
		profile    = flag.String("profile", "paper", "latency profile: paper|fast|off")
		requests   = flag.Int("requests", 4000, "requests per RTT measurement")
		duration   = flag.Duration("duration", time.Second, "measurement window per throughput point")
		connsFlag  = flag.String("conns", "1,25,50,75,100", "connection counts for figure sweeps")
	)
	flag.Parse()

	prof, ok := calib.ByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	var conns []int
	for _, f := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad -conns entry %q\n", f)
			os.Exit(2)
		}
		conns = append(conns, n)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s (profile %s) ===\n", name, prof.Name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("table1") {
		run("E1 table1", func() error {
			res, err := bench.RunTable1(prof, *requests)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("figure2") {
		run("E2 figure2", func() error {
			res, err := bench.RunFigure2(prof, conns, *duration, false)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("table2") {
		run("E3 table2", func() error {
			res, err := bench.RunTable2(prof, *requests)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("ablation") {
		run("E4 ablation", func() error {
			res, err := bench.RunAblation(prof, *requests)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("figure3") {
		run("E5 figure3", func() error {
			res, err := bench.RunFigure2(prof, conns, *duration, true)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("recovery") {
		run("E6 recovery", func() error {
			res, err := bench.RunRecovery(prof, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("metasize") {
		run("E7 metasize", func() error {
			res, err := bench.RunMetaSize(prof, *requests, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
}
