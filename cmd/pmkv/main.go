// Command pmkv operates a packetstore over a file-backed persistent-
// memory image: a durable key-value store in a single file, with the
// store's crash-consistent on-media format.
//
// Usage:
//
//	pmkv -pm store.img put <key> <value>
//	pmkv -pm store.img get <key>
//	pmkv -pm store.img del <key>
//	pmkv -pm store.img range <start> <end> [limit]
//	pmkv -pm store.img stats
//	pmkv -pm store.img verify
package main

import (
	"flag"
	"fmt"
	"os"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/pmem"
)

func main() {
	var (
		pmPath    = flag.String("pm", "pmkv.img", "persistent-memory image file")
		metaSlots = flag.Int("meta-slots", 4096, "metadata slots (fixed at image creation)")
		dataSlots = flag.Int("data-slots", 4096, "data slots (fixed at image creation)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	cfg := core.Config{
		MetaSlots: *metaSlots, DataSlots: *dataSlots, VerifyOnGet: true,
	}
	r, err := pmem.OpenFile(*pmPath, cfg.RegionSize(), calib.Off())
	if err != nil {
		fatal(err)
	}
	s, err := core.Open(r, cfg)
	if err != nil {
		fatal(err)
	}

	switch args[0] {
	case "put":
		need(args, 3)
		if err := s.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "get":
		need(args, 2)
		v, ok, err := s.Get([]byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "not found")
			os.Exit(1)
		}
		os.Stdout.Write(v)
		fmt.Println()
	case "del":
		need(args, 2)
		found, err := s.Delete([]byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if !found {
			fmt.Fprintln(os.Stderr, "not found")
			os.Exit(1)
		}
		fmt.Println("deleted")
	case "range":
		need(args, 3)
		limit := 0
		if len(args) > 3 {
			fmt.Sscanf(args[3], "%d", &limit)
		}
		var end []byte
		if args[2] != "-" {
			end = []byte(args[2])
		}
		recs, err := s.Range([]byte(args[1]), end, limit)
		if err != nil {
			fatal(err)
		}
		for _, rec := range recs {
			fmt.Printf("%s\t%s\n", rec.Key, rec.Value)
		}
	case "stats":
		st := s.Stats()
		fmt.Printf("records: %d\nputs: %d\ngets: %d (hits %d)\ndeletes: %d\n"+
			"bytes stored: %d\nchecksums reused: %d, computed: %d\n",
			st.Records, st.Puts, st.Gets, st.Hits, st.Deletes,
			st.BytesStored, st.ChecksumReused, st.ChecksumComputed)
	case "verify":
		bad, err := s.Verify()
		if err != nil {
			fatal(err)
		}
		if len(bad) == 0 {
			fmt.Println("all records intact")
		} else {
			for _, k := range bad {
				fmt.Printf("CORRUPT: %s\n", k)
			}
			os.Exit(1)
		}
	default:
		usage()
	}
	// Close writes the durable image back to the file; a failure here
	// means the mutation above did not land, so it must be fatal.
	if err := s.Close(); err != nil {
		fatal(err)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pmkv [-pm file] put <k> <v> | get <k> | del <k> | range <start> <end|-> [limit] | stats | verify")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmkv:", err)
	os.Exit(1)
}
