// Command pktstored serves a packetstore over real TCP sockets, backed
// by a file-backed persistent-memory image. The simulated-NIC zero-copy
// mechanisms do not apply on OS sockets (requests take the copy path);
// the on-media format, crash consistency and recovery are identical to
// the simulated deployment, so images are interchangeable with pmkv and
// the examples.
//
// Usage:
//
//	pktstored -listen :8080 -pm store.img
//
// By default a self-healing supervisor runs alongside the server: a
// background scrubber re-validates record CRCs on a budget, quarantined
// shards are rebuilt online while the rest keep serving, and
// GET /healthz reports per-shard state (200 all-serving, 503 degraded).
// Disable with -heal=false.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "TCP listen address")
		pmPath    = flag.String("pm", "pktstored.img", "persistent-memory image file")
		metaSlots = flag.Int("meta-slots", 65536, "metadata slots (fixed at image creation)")
		dataSlots = flag.Int("data-slots", 65536, "data slots (fixed at image creation)")
		shards    = flag.Int("shards", 1, "store partitions (fixed at image creation; slots are per shard)")
		maxConns  = flag.Int("max-conns", 0, "connection cap; beyond it new connections are shed with 503 (0 = unlimited)")
		idle      = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		heal      = flag.Bool("heal", true, "run the self-healing supervisor (background scrub + online shard rebuild)")
		scrubIval = flag.Duration("scrub-interval", 5*time.Millisecond, "pause between scrub budget slices")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof (plus a /healthz JSON mirror) on this address, e.g. localhost:6060 (empty = off)")
		numaNodes = flag.Int("numa-nodes", 1, "model this many NUMA sockets: shard i's PM partition lands on node i mod N and /healthz reports local vs remote line traffic (1 = flat)")

		overload   = flag.Bool("overload", false, "enable overload control: requests whose X-Budget-Us lapsed are answered 503 unexecuted")
		ovTarget   = flag.Duration("overload-target", 0, "acceptable queue sojourn before shedding starts (0 = 2ms default)")
		ovInterval = flag.Duration("overload-interval", 0, "sojourn must stay above target this long before shedding (0 = 50ms default)")
		retryAfter = flag.Duration("overload-retry-after", 0, "Retry-After-Ms hint on overload 503s (0 = 25ms default)")
	)
	flag.Parse()
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be >= 1, got %d", *shards))
	}

	cfg := core.Config{MetaSlots: *metaSlots, DataSlots: *dataSlots, VerifyOnGet: true}
	// Single-shard images keep the exact pre-sharding size, so existing
	// image files stay openable.
	size := cfg.RegionSize()
	if *shards > 1 {
		size = core.ShardedRegionSize(cfg, *shards)
	}
	r, err := pmem.OpenFile(*pmPath, size, calib.Off())
	if err != nil {
		fatal(err)
	}
	ss, err := core.OpenSharded(r, cfg, *shards)
	if err != nil {
		fatal(err)
	}
	if *numaNodes > 1 {
		// Real-socket mode runs without latency emulation, so the NUMA
		// model contributes accounting only: /healthz shows how many PM
		// lines each placement kept node-local. Shard i goes to node
		// i mod N, matching the simulated aligned deployment.
		shardNode := make([]int, *shards)
		for i := range shardNode {
			shardNode[i] = i % *numaNodes
		}
		if err := ss.SetNUMAPlacement(calib.Off().NUMA, *numaNodes, shardNode); err != nil {
			fatal(err)
		}
		fmt.Printf("pktstored: NUMA accounting on (%d nodes, shard i -> node i mod %d)\n",
			*numaNodes, *numaNodes)
	}
	fmt.Printf("pktstored: %d records recovered from %s (%d shards)\n",
		ss.Len(), *pmPath, ss.Shards())
	for i, h := range ss.Health() {
		if h != nil {
			fmt.Fprintf(os.Stderr, "pktstored: WARNING shard %d quarantined: %v (its keys answer 503)\n", i, h)
		}
	}

	lst, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := kvserver.NewNetServerWithConfig(lst, kvserver.ShardedPktStore{S: ss},
		kvserver.Config{MaxConns: *maxConns, IdleTimeout: *idle,
			Overload: kvserver.OverloadConfig{
				Enabled: *overload, Target: *ovTarget,
				Interval: *ovInterval, RetryAfter: *retryAfter,
			}})
	if *overload {
		fmt.Println("pktstored: overload control on (expired X-Budget-Us requests answered 503 unexecuted)")
	}

	var healer *kvserver.Healer
	if *heal {
		healer = kvserver.NewHealer(ss, kvserver.HealConfig{ScrubInterval: *scrubIval})
		go healer.Run()
		srv.SetHealthSource(healer.Health)
		fmt.Printf("pktstored: healer running (scrub interval %v); GET /healthz reports shard state\n", *scrubIval)
	}

	if *pprofAddr != "" {
		// Contention profiles are off by default in the runtime; a server
		// asked to expose pprof wants them, and the sampling rates below
		// are cheap enough to leave on while serving.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Millisecond))
		// The main listener speaks the store's own wire protocol, so the
		// stdlib profiling handlers get their own HTTP listener. The
		// /healthz mirror serves the same report as the native endpoint,
		// letting one scrape target cover profiles and health.
		plst, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			var rep kvserver.HealthReport
			if healer != nil {
				rep = healer.Health()
			} else {
				rep.Ready = true
				for i, h := range ss.Health() {
					sh := kvserver.ShardHealth{Shard: i, State: "serving"}
					if h != nil {
						sh.State, sh.Reason = "down", h.Error()
						rep.Ready = false
					}
					rep.Shards = append(rep.Shards, sh)
				}
			}
			w.Header().Set("Content-Type", "application/json")
			if !rep.Ready {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(rep)
		})
		go func() {
			if err := http.Serve(plst, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pktstored: pprof listener:", err)
			}
		}()
		fmt.Printf("pktstored: pprof + /healthz mirror on http://%s/debug/pprof/\n", plst.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("pktstored: shutting down")
		if healer != nil {
			healer.Close()
		}
		srv.Close()
	}()

	fmt.Printf("pktstored: listening on %s\n", *listen)
	if err := srv.Serve(); err != nil {
		fatal(err)
	}
	if err := r.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pktstored:", err)
	os.Exit(1)
}
