// Command pktstored serves a packetstore over real TCP sockets, backed
// by a file-backed persistent-memory image. The simulated-NIC zero-copy
// mechanisms do not apply on OS sockets (requests take the copy path);
// the on-media format, crash consistency and recovery are identical to
// the simulated deployment, so images are interchangeable with pmkv and
// the examples.
//
// Usage:
//
//	pktstored -listen :8080 -pm store.img
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "TCP listen address")
		pmPath    = flag.String("pm", "pktstored.img", "persistent-memory image file")
		metaSlots = flag.Int("meta-slots", 65536, "metadata slots (fixed at image creation)")
		dataSlots = flag.Int("data-slots", 65536, "data slots (fixed at image creation)")
	)
	flag.Parse()

	cfg := core.Config{MetaSlots: *metaSlots, DataSlots: *dataSlots, VerifyOnGet: true}
	r, err := pmem.OpenFile(*pmPath, cfg.RegionSize(), calib.Off())
	if err != nil {
		fatal(err)
	}
	store, err := core.Open(r, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pktstored: %d records recovered from %s\n", store.Len(), *pmPath)

	lst, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := kvserver.NewNetServer(lst, kvserver.PktStore{S: store})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("pktstored: shutting down")
		srv.Close()
	}()

	fmt.Printf("pktstored: listening on %s\n", *listen)
	if err := srv.Serve(); err != nil {
		fatal(err)
	}
	if err := r.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pktstored:", err)
	os.Exit(1)
}
