module packetstore

go 1.22
